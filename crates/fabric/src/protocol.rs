//! The fabric wire protocol: one JSON object per `\n`-terminated line,
//! reusing the service crate's [`Json`] codec and frame reader.
//!
//! Requests carry an `"op"` member, responses an `"ok"` member:
//!
//! | request | response |
//! |---------|----------|
//! | `{"op":"hello","name":..}` | `{"ok":"spec","spec":..,"fingerprint":..,"total":..,"cache_dir":..}` |
//! | `{"op":"next","name":..}` | `{"ok":"lease",..}` \| `{"ok":"wait","ms":..}` \| `{"ok":"drain"}` |
//! | `{"op":"rows","lease":..,"rows":..,..}` | `{"ok":"ack","end":..}` \| `{"ok":"gone"}` |
//! | `{"op":"ping","lease":..}` | `{"ok":"ack","end":..}` \| `{"ok":"gone"}` |
//! | `{"op":"stats"}` | `{"ok":"stats",..}` |
//!
//! Any malformed request draws `{"ok":"error","error":..}`. Row payloads
//! travel as a hex-encoded binary blob (the row section of the `STGSHRD`
//! artifact format: a `u32` count, then per row a `u64` case index, `u32`
//! payload length, and the canonical outcome serialization), so one frame
//! carries a bounded batch of rows without JSON-escaping every payload.

use stg_des::LeapStats;
use stg_experiments::store::Outcome;
use stg_experiments::store::{
    decode_outcome, encode_outcome_into, put_u32, put_u64, take_str, take_u32, take_u64,
};
use stg_service::json::Json;

/// Frame bound for fabric connections: row batches are larger than the
/// service's request frames, but still bounded (a batch of
/// [`MAX_ROWS_PER_FRAME`] rows is a few hundred KiB at worst).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Upper bound on rows per `rows` frame; workers chunk larger leases so
/// partially-reported leases survive a mid-lease death.
pub const MAX_ROWS_PER_FRAME: usize = 128;

/// A parsed fabric request.
#[derive(Clone, Debug, PartialEq)]
pub enum FabricRequest {
    /// Worker handshake; the coordinator answers with the spec frame.
    Hello {
        /// Worker name (for logs only).
        name: String,
    },
    /// Lease request.
    Next {
        /// Worker name (for logs only).
        name: String,
    },
    /// A batch of evaluated rows for one lease, plus the worker-side
    /// store and leap telemetry deltas of the batch.
    Rows {
        /// Lease id the rows belong to.
        lease: u64,
        /// Decoded `(case index, outcome)` rows.
        rows: Vec<(usize, Outcome)>,
        /// Worker-side result-store hits while evaluating the batch.
        hits: u64,
        /// Worker-side result-store misses while evaluating the batch.
        misses: u64,
        /// Batched-simulator epoch-leap telemetry of the batch.
        leap: LeapStats,
    },
    /// Deadline refresh for a long-running lease.
    Ping {
        /// Lease id to refresh.
        lease: u64,
    },
    /// Counter snapshot request.
    Stats,
}

impl FabricRequest {
    /// Renders the request frame (no trailing newline).
    pub fn frame(&self) -> String {
        match self {
            FabricRequest::Hello { name } => Json::Obj(vec![
                ("op".into(), Json::Str("hello".into())),
                ("name".into(), Json::Str(name.clone())),
            ]),
            FabricRequest::Next { name } => Json::Obj(vec![
                ("op".into(), Json::Str("next".into())),
                ("name".into(), Json::Str(name.clone())),
            ]),
            FabricRequest::Rows {
                lease,
                rows,
                hits,
                misses,
                leap,
            } => Json::Obj(vec![
                ("op".into(), Json::Str("rows".into())),
                ("lease".into(), Json::num(*lease)),
                ("rows".into(), Json::Str(encode_rows(rows))),
                ("hits".into(), Json::num(*hits)),
                ("misses".into(), Json::num(*misses)),
                ("leaps".into(), Json::num(leap.leaps)),
                ("leaped_cycles".into(), Json::num(leap.leaped_cycles)),
                ("max_period".into(), Json::num(leap.max_period)),
            ]),
            FabricRequest::Ping { lease } => Json::Obj(vec![
                ("op".into(), Json::Str("ping".into())),
                ("lease".into(), Json::num(*lease)),
            ]),
            FabricRequest::Stats => Json::Obj(vec![("op".into(), Json::Str("stats".into()))]),
        }
        .to_string()
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<FabricRequest, String> {
        let v = stg_service::json::parse(line).map_err(|e| format!("bad frame: {e}"))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing op".to_string())?;
        let name = || {
            v.get("name")
                .and_then(Json::as_str)
                .unwrap_or("worker")
                .to_string()
        };
        match op {
            "hello" => Ok(FabricRequest::Hello { name: name() }),
            "next" => Ok(FabricRequest::Next { name: name() }),
            "rows" => {
                let n = |key: &str| {
                    v.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("rows frame missing {key}"))
                };
                let blob = v
                    .get("rows")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "rows frame missing rows blob".to_string())?;
                Ok(FabricRequest::Rows {
                    lease: n("lease")?,
                    rows: decode_rows(blob)?,
                    hits: n("hits")?,
                    misses: n("misses")?,
                    leap: LeapStats {
                        leaps: n("leaps")?,
                        leaped_cycles: n("leaped_cycles")?,
                        max_period: n("max_period")?,
                    },
                })
            }
            "ping" => Ok(FabricRequest::Ping {
                lease: v
                    .get("lease")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "ping frame missing lease".to_string())?,
            }),
            "stats" => Ok(FabricRequest::Stats),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// A parsed fabric response.
#[derive(Clone, Debug, PartialEq)]
pub enum FabricResponse {
    /// Handshake answer: everything a worker needs to expand leases.
    Spec {
        /// The [`SweepSpec::encode_spec`](stg_experiments::SweepSpec::encode_spec) block.
        spec: String,
        /// The spec's grid fingerprint (workers verify their expansion).
        fingerprint: u64,
        /// Case count of the full grid.
        total: usize,
        /// Shared `--cache-dir`, when the coordinator has one.
        cache_dir: Option<String>,
    },
    /// A leased case range.
    Lease {
        /// Lease id (quote it back in `rows`/`ping`).
        lease: u64,
        /// First case index of the lease.
        start: usize,
        /// One past the last case index.
        end: usize,
        /// Deadline budget; the coordinator re-queues the lease this long
        /// after issue (each accepted `rows`/`ping` frame refreshes it).
        deadline_ms: u64,
    },
    /// No lease available right now; retry after `ms`.
    Wait {
        /// Suggested retry delay.
        ms: u64,
    },
    /// Every cell is merged; the worker should exit.
    Drain,
    /// Rows accepted; the lease now ends at `end` (steals shrink it).
    Ack {
        /// Current end of the lease range (`start..end` still owned).
        end: usize,
    },
    /// The lease is no longer outstanding (completed, stolen whole, or
    /// re-queued); abandon it and request the next one.
    Gone,
    /// Counter snapshot (see [`crate::FabricSnapshot::from_json`]).
    Stats(crate::FabricSnapshot),
    /// Malformed request.
    Error {
        /// Human-readable cause.
        error: String,
    },
}

impl FabricResponse {
    /// Renders the response frame (no trailing newline).
    pub fn frame(&self) -> String {
        match self {
            FabricResponse::Spec {
                spec,
                fingerprint,
                total,
                cache_dir,
            } => Json::Obj(vec![
                ("ok".into(), Json::Str("spec".into())),
                ("spec".into(), Json::Str(spec.clone())),
                (
                    "fingerprint".into(),
                    Json::Str(format!("{fingerprint:016x}")),
                ),
                ("total".into(), Json::num(*total)),
                (
                    "cache_dir".into(),
                    match cache_dir {
                        Some(dir) => Json::Str(dir.clone()),
                        None => Json::Null,
                    },
                ),
            ]),
            FabricResponse::Lease {
                lease,
                start,
                end,
                deadline_ms,
            } => Json::Obj(vec![
                ("ok".into(), Json::Str("lease".into())),
                ("lease".into(), Json::num(*lease)),
                ("start".into(), Json::num(*start)),
                ("end".into(), Json::num(*end)),
                ("deadline_ms".into(), Json::num(*deadline_ms)),
            ]),
            FabricResponse::Wait { ms } => Json::Obj(vec![
                ("ok".into(), Json::Str("wait".into())),
                ("ms".into(), Json::num(*ms)),
            ]),
            FabricResponse::Drain => Json::Obj(vec![("ok".into(), Json::Str("drain".into()))]),
            FabricResponse::Ack { end } => Json::Obj(vec![
                ("ok".into(), Json::Str("ack".into())),
                ("end".into(), Json::num(*end)),
            ]),
            FabricResponse::Gone => Json::Obj(vec![("ok".into(), Json::Str("gone".into()))]),
            FabricResponse::Stats(snap) => return snap.frame(),
            FabricResponse::Error { error } => Json::Obj(vec![
                ("ok".into(), Json::Str("error".into())),
                ("error".into(), Json::Str(error.clone())),
            ]),
        }
        .to_string()
    }

    /// Parses one response line.
    pub fn parse(line: &str) -> Result<FabricResponse, String> {
        let v = stg_service::json::parse(line).map_err(|e| format!("bad frame: {e}"))?;
        let ok = v
            .get("ok")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing ok".to_string())?;
        let n = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{ok} frame missing {key}"))
        };
        match ok {
            "spec" => Ok(FabricResponse::Spec {
                spec: v
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "spec frame missing spec".to_string())?
                    .to_string(),
                fingerprint: v
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| "spec frame missing fingerprint".to_string())?,
                total: n("total")? as usize,
                cache_dir: v
                    .get("cache_dir")
                    .and_then(Json::as_str)
                    .map(str::to_string),
            }),
            "lease" => Ok(FabricResponse::Lease {
                lease: n("lease")?,
                start: n("start")? as usize,
                end: n("end")? as usize,
                deadline_ms: n("deadline_ms")?,
            }),
            "wait" => Ok(FabricResponse::Wait { ms: n("ms")? }),
            "drain" => Ok(FabricResponse::Drain),
            "ack" => Ok(FabricResponse::Ack {
                end: n("end")? as usize,
            }),
            "gone" => Ok(FabricResponse::Gone),
            "stats" => crate::FabricSnapshot::from_json(&v)
                .map(FabricResponse::Stats)
                .ok_or_else(|| "malformed stats frame".to_string()),
            "error" => Ok(FabricResponse::Error {
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            }),
            other => Err(format!("unknown response {other:?}")),
        }
    }
}

/// Encodes a row batch as the hex blob of the `rows` frame.
pub fn encode_rows(rows: &[(usize, Outcome)]) -> String {
    // One payload buffer serves every row, and the hex rendering pushes
    // nibbles directly — the only allocations are the two buffers, not
    // one per row (or, worse, per byte).
    let mut payload = String::with_capacity(96);
    let mut bytes = Vec::with_capacity(8 + rows.len() * 48);
    put_u32(&mut bytes, rows.len() as u32);
    for (index, outcome) in rows {
        payload.clear();
        encode_outcome_into(&mut payload, outcome);
        put_u64(&mut bytes, *index as u64);
        put_u32(&mut bytes, payload.len() as u32);
        bytes.extend_from_slice(payload.as_bytes());
    }
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes an [`encode_rows`] blob.
pub fn decode_rows(blob: &str) -> Result<Vec<(usize, Outcome)>, String> {
    if !blob.len().is_multiple_of(2) || !blob.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err("rows blob is not hex".to_string());
    }
    let bytes: Vec<u8> = (0..blob.len() / 2)
        .map(|i| u8::from_str_radix(&blob[2 * i..2 * i + 2], 16).expect("hex checked"))
        .collect();
    let trunc = || "truncated rows blob".to_string();
    let (count, mut rest) = take_u32(&bytes).ok_or_else(trunc)?;
    let mut rows = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let (index, r) = take_u64(rest).ok_or_else(trunc)?;
        let (len, r) = take_u32(r).ok_or_else(trunc)?;
        let (payload, r) = take_str(r, len as usize).ok_or_else(trunc)?;
        let outcome = decode_outcome(payload)
            .ok_or_else(|| format!("undecodable row payload for case {index}"))?;
        rows.push((index as usize, outcome));
        rest = r;
    }
    if !rest.is_empty() {
        return Err("trailing bytes after rows".to_string());
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<(usize, Outcome)> {
        let spec = stg_experiments::SweepSpec::paper(1, 3);
        let sweep = spec.run();
        sweep
            .runs
            .into_iter()
            .take(5)
            .map(|r| (r.case.index, r.outcome))
            .collect()
    }

    #[test]
    fn rows_blob_round_trips() {
        let rows = sample_rows();
        let blob = encode_rows(&rows);
        let back = decode_rows(&blob).unwrap();
        assert_eq!(back.len(), rows.len());
        for ((i, a), (j, b)) in rows.iter().zip(&back) {
            assert_eq!(i, j);
            let encode = stg_experiments::store::encode_outcome;
            assert_eq!(encode(a), encode(b));
        }
        // Truncations and junk decode to errors, never panics.
        assert!(decode_rows(&blob[..blob.len() - 2]).is_err());
        assert!(decode_rows("zz").is_err());
        assert!(decode_rows("abc").is_err());
        assert!(decode_rows(&format!("{blob}00")).is_err());
    }

    #[test]
    fn request_frames_round_trip() {
        let rows = sample_rows();
        for req in [
            FabricRequest::Hello { name: "w1".into() },
            FabricRequest::Next { name: "w1".into() },
            FabricRequest::Rows {
                lease: 9,
                rows,
                hits: 3,
                misses: 2,
                leap: stg_des::LeapStats {
                    leaps: 1,
                    leaped_cycles: 50,
                    max_period: 4,
                },
            },
            FabricRequest::Ping { lease: 7 },
            FabricRequest::Stats,
        ] {
            let line = req.frame();
            let back = FabricRequest::parse(&line).unwrap();
            // Outcome has no Eq; compare re-rendered frames instead.
            assert_eq!(back.frame(), line);
        }
        assert!(FabricRequest::parse("{}").is_err());
        assert!(FabricRequest::parse("{\"op\":\"launch\"}").is_err());
        assert!(FabricRequest::parse("not json").is_err());
    }

    #[test]
    fn response_frames_round_trip() {
        for resp in [
            FabricResponse::Spec {
                spec: "graphs 1\nseed 3\n".into(),
                fingerprint: 0xdead_beef_0bad_f00d,
                total: 42,
                cache_dir: Some("/tmp/cache".into()),
            },
            FabricResponse::Spec {
                spec: String::new(),
                fingerprint: 1,
                total: 0,
                cache_dir: None,
            },
            FabricResponse::Lease {
                lease: 3,
                start: 10,
                end: 20,
                deadline_ms: 30_000,
            },
            FabricResponse::Wait { ms: 50 },
            FabricResponse::Drain,
            FabricResponse::Ack { end: 15 },
            FabricResponse::Gone,
            FabricResponse::Stats(crate::FabricSnapshot {
                leases_issued: 2,
                ..Default::default()
            }),
            FabricResponse::Error {
                error: "nope".into(),
            },
        ] {
            let line = resp.frame();
            assert_eq!(FabricResponse::parse(&line).unwrap(), resp, "{line}");
        }
        assert!(FabricResponse::parse("{\"ok\":\"mystery\"}").is_err());
    }
}
