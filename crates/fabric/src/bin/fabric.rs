//! The distributed sweep fabric CLI.
//!
//! Three subcommands:
//!
//! - `fabric coordinate [FABRIC FLAGS] [SWEEP FLAGS]` — bind a
//!   coordinator, expand the sweep grid from the usual `sweep` flags
//!   (`--graphs`, `--seed`, `--workload`, `--pes`, `--scheduler`,
//!   `--validate`, `--sim`, `--json`, `--cache-dir`, …), serve leases
//!   until the artifact is complete, and stream byte-identical CSV/JSON
//!   to stdout. Fabric flags: `--addr A` (default `127.0.0.1:0`; the
//!   bound address prints to stderr), `--workers N` (in-process worker
//!   threads), `--spawn N` (child `fabric work` processes),
//!   `--lease-cells N`, `--lease-timeout-ms T`, `--eval-delay-ms D`
//!   (forwarded to workers; fault-test hook).
//! - `fabric work --connect ADDR [--cache-dir DIR] [--threads N]
//!   [--eval-delay-ms D] [--name S]` — one worker, runs to drain.
//! - `fabric stats --connect ADDR` — print a live coordinator's counter
//!   summary.
//!
//! `sweep --distributed N` delegates to `fabric coordinate --workers N`.
//!
//! ```sh
//! cargo run --release --bin fabric -- coordinate --workers 4 \
//!     --workload stencil2d,spmv --graphs 2 --validate > distributed.csv
//! ```

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::{Child, Command};
use std::time::Duration;

use stg_experiments::{Args, SweepSpec};
use stg_fabric::{
    run_worker, Coordinator, FabricConfig, FabricRequest, FabricResponse, FabricSnapshot,
    OutputKind, WorkerConfig, MAX_FRAME_BYTES,
};
use stg_service::read_frame;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("coordinate") => coordinate_main(&argv[1..]),
        Some("work") => work_main(&argv[1..]),
        Some("stats") => stats_main(&argv[1..]),
        _ => {
            eprintln!(
                "usage: fabric coordinate [FABRIC FLAGS] [SWEEP FLAGS]\n\
                 \x20      fabric work --connect ADDR [--cache-dir DIR] [--threads N] \
                 [--eval-delay-ms D] [--name S]\n\
                 \x20      fabric stats --connect ADDR"
            );
            std::process::exit(2);
        }
    }
}

/// Parses the flag's value operand, exiting with usage on absence/junk.
fn value<T: std::str::FromStr>(argv: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    argv.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
}

fn coordinate_main(argv: &[String]) {
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers = 0usize;
    let mut spawn = 0usize;
    let mut lease_cells = 0usize;
    let mut lease_timeout_ms = 30_000u64;
    let mut eval_delay_ms = 0u64;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => addr = value(argv, &mut i, "--addr"),
            "--workers" => workers = value(argv, &mut i, "--workers"),
            "--spawn" => spawn = value(argv, &mut i, "--spawn"),
            "--lease-cells" => lease_cells = value(argv, &mut i, "--lease-cells"),
            "--lease-timeout-ms" => lease_timeout_ms = value(argv, &mut i, "--lease-timeout-ms"),
            "--eval-delay-ms" => eval_delay_ms = value(argv, &mut i, "--eval-delay-ms"),
            _ => rest.push(argv[i].clone()),
        }
        i += 1;
    }
    if workers == 0 && spawn == 0 {
        workers = 1; // a coordinator with no workers would wait forever
    }
    let args = Args::parse_from(rest);
    if args.sim_timing {
        eprintln!("--sim-timing is not supported by fabric coordinate: wall-clocks are per-worker and non-deterministic");
        std::process::exit(2);
    }
    args.reject_shard("fabric coordinate");
    let spec = SweepSpec::paper(args.graphs, args.seed)
        .extend_from_filter(&args)
        .filtered(&args);
    let config = FabricConfig {
        addr,
        lease_cells,
        lease_timeout: Duration::from_millis(lease_timeout_ms.max(1)),
        cache_dir: args.cache_dir.clone(),
        kind: if args.json {
            OutputKind::Json
        } else {
            OutputKind::Csv
        },
    };
    let coordinator = Coordinator::bind(spec, config).unwrap_or_else(|e| {
        eprintln!("ERROR: {e}");
        std::process::exit(2);
    });
    let bound = coordinator.addr();
    eprintln!("fabric: listening on {bound}");

    let eval_delay = Duration::from_millis(eval_delay_ms);
    let mut children: Vec<Child> = Vec::new();
    for n in 0..spawn {
        let exe = std::env::current_exe().unwrap_or_else(|e| {
            eprintln!("ERROR: cannot locate the fabric binary: {e}");
            std::process::exit(2);
        });
        let mut cmd = Command::new(exe);
        cmd.arg("work")
            .arg("--connect")
            .arg(bound.to_string())
            .arg("--name")
            .arg(format!("spawned-{n}"));
        if let Some(t) = args.threads {
            cmd.arg("--threads").arg(t.to_string());
        }
        if eval_delay_ms > 0 {
            cmd.arg("--eval-delay-ms").arg(eval_delay_ms.to_string());
        }
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                eprintln!("ERROR: spawn worker: {e}");
                std::process::exit(2);
            }
        }
    }
    let mut threads = Vec::new();
    for n in 0..workers {
        let config = WorkerConfig {
            addr: bound.to_string(),
            cache_dir: None, // the coordinator advertises --cache-dir
            threads: args.threads,
            eval_delay,
            name: format!("inproc-{n}"),
        };
        threads.push(std::thread::spawn(move || {
            if let Err(e) = run_worker(config) {
                eprintln!("fabric: worker {}: {e}", config_name(n));
            }
        }));
    }

    let out = BufWriter::new(std::io::stdout());
    let report = coordinator.run(out).unwrap_or_else(|e| {
        eprintln!("ERROR: {e}");
        std::process::exit(2);
    });
    for t in threads {
        let _ = t.join();
    }
    for mut child in children {
        let _ = child.wait(); // workers exit on drain; killed ones reap here
    }
    let snap = report.counters;
    eprintln!("{}", snap.summary_line());
    if snap.leap.leaps > 0 {
        eprintln!(
            "fabric leap: leaps={} leaped_cycles={} max_period={}",
            snap.leap.leaps, snap.leap.leaped_cycles, snap.leap.max_period
        );
    }
    let t = report.merge.tallies;
    if t.errors > 0 || t.deadlocks > 0 || t.divergences > 0 {
        eprintln!(
            "ERROR: {} scheduling errors, {} simulation deadlocks, {} simulator divergences",
            t.errors, t.deadlocks, t.divergences
        );
        std::process::exit(1);
    }
}

fn config_name(n: usize) -> String {
    format!("inproc-{n}")
}

fn work_main(argv: &[String]) {
    let mut config = WorkerConfig::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--connect" => config.addr = value(argv, &mut i, "--connect"),
            "--cache-dir" => {
                config.cache_dir = Some(value::<String>(argv, &mut i, "--cache-dir").into())
            }
            "--threads" => config.threads = Some(value(argv, &mut i, "--threads")),
            "--eval-delay-ms" => {
                config.eval_delay = Duration::from_millis(value(argv, &mut i, "--eval-delay-ms"))
            }
            "--name" => config.name = value(argv, &mut i, "--name"),
            other => {
                eprintln!(
                    "unknown fabric work flag {other}; supported: --connect ADDR \
                     --cache-dir DIR --threads N --eval-delay-ms D --name S"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if config.addr.is_empty() {
        eprintln!("fabric work requires --connect ADDR (printed by fabric coordinate)");
        std::process::exit(2);
    }
    match run_worker(config) {
        Ok(report) => eprintln!(
            "fabric: drained after {} leases, {} rows reported",
            report.leases, report.rows_reported
        ),
        Err(e) => {
            eprintln!("ERROR: {e}");
            std::process::exit(1);
        }
    }
}

fn stats_main(argv: &[String]) {
    let mut addr = String::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--connect" => addr = value(argv, &mut i, "--connect"),
            other => {
                eprintln!("unknown fabric stats flag {other}; supported: --connect ADDR");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if addr.is_empty() {
        eprintln!("fabric stats requires --connect ADDR");
        std::process::exit(2);
    }
    let snap = fetch_stats(&addr).unwrap_or_else(|e| {
        eprintln!("ERROR: {e}");
        std::process::exit(1);
    });
    print_snapshot(&snap);
}

/// One `stats` round-trip against a live coordinator.
fn fetch_stats(addr: &str) -> Result<FabricSnapshot, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut frame = FabricRequest::Stats.frame();
    frame.push('\n');
    stream
        .write_all(frame.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    match read_frame(&mut reader, MAX_FRAME_BYTES).map_err(|e| format!("recv: {e}"))? {
        Some(Ok(line)) => match FabricResponse::parse(&line)? {
            FabricResponse::Stats(snap) => Ok(snap),
            FabricResponse::Error { error } => Err(error),
            other => Err(format!("unexpected stats reply: {}", other.frame())),
        },
        Some(Err(len)) => Err(format!("oversize {len}-byte response frame")),
        None => Err("coordinator closed the connection".to_string()),
    }
}

fn print_snapshot(snap: &FabricSnapshot) {
    println!("{}", snap.summary_line());
    println!(
        "fabric leap: leaps={} leaped_cycles={} max_period={}",
        snap.leap.leaps, snap.leap.leaped_cycles, snap.leap.max_period
    );
}
