//! Monotonic fabric counters: the lease/steal/re-queue/merge numbers the
//! coordinator prints at exit, serves over the `stats` op, and the fault
//! tolerance tests assert on.

use std::sync::atomic::{AtomicU64, Ordering};

use stg_des::LeapStats;
use stg_service::json::Json;

/// Aggregate coordinator counters. All monotonic atomics; the snapshot is
/// relaxed-loaded per counter (exact cross-counter consistency is not
/// promised while leases are in flight).
#[derive(Default)]
pub struct FabricCounters {
    leases_issued: AtomicU64,
    leases_stolen: AtomicU64,
    re_queued: AtomicU64,
    worker_deaths: AtomicU64,
    leases_completed: AtomicU64,
    rows_merged: AtomicU64,
    rows_duplicate: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    leap_leaps: AtomicU64,
    leap_cycles: AtomicU64,
    leap_max_period: AtomicU64,
    lease_cells: AtomicU64,
}

macro_rules! bump {
    ($($name:ident => $field:ident),* $(,)?) => {
        $(
            #[doc = concat!("Adds `n` to the `", stringify!($field), "` counter.")]
            pub fn $name(&self, n: u64) {
                self.$field.fetch_add(n, Ordering::Relaxed);
            }
        )*
    };
}

impl FabricCounters {
    /// A fresh, all-zero counter set.
    pub fn new() -> FabricCounters {
        FabricCounters::default()
    }

    bump! {
        add_issued => leases_issued,
        add_stolen => leases_stolen,
        add_re_queued => re_queued,
        add_worker_deaths => worker_deaths,
        add_completed => leases_completed,
        add_rows_merged => rows_merged,
        add_rows_duplicate => rows_duplicate,
        add_cache_hits => cache_hits,
        add_cache_misses => cache_misses,
    }

    /// Publishes the lease auto-tuner's current size (a gauge, not a
    /// monotonic counter: the last written value wins).
    pub fn set_lease_cells(&self, cells: u64) {
        self.lease_cells.store(cells, Ordering::Relaxed);
    }

    /// Folds one lease report's aggregated [`LeapStats`] into the
    /// fabric-wide leap counters.
    pub fn record_leap(&self, leap: LeapStats) {
        self.leap_leaps.fetch_add(leap.leaps, Ordering::Relaxed);
        self.leap_cycles
            .fetch_add(leap.leaped_cycles, Ordering::Relaxed);
        self.leap_max_period
            .fetch_max(leap.max_period, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> FabricSnapshot {
        FabricSnapshot {
            leases_issued: self.leases_issued.load(Ordering::Relaxed),
            leases_stolen: self.leases_stolen.load(Ordering::Relaxed),
            re_queued: self.re_queued.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            leases_completed: self.leases_completed.load(Ordering::Relaxed),
            rows_merged: self.rows_merged.load(Ordering::Relaxed),
            rows_duplicate: self.rows_duplicate.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            leap: LeapStats {
                leaps: self.leap_leaps.load(Ordering::Relaxed),
                leaped_cycles: self.leap_cycles.load(Ordering::Relaxed),
                max_period: self.leap_max_period.load(Ordering::Relaxed),
            },
            lease_cells_current: self.lease_cells.load(Ordering::Relaxed),
        }
    }
}

/// One point-in-time copy of the [`FabricCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricSnapshot {
    /// Leases handed to workers (fresh from the pending queue).
    pub leases_issued: u64,
    /// Leases created by splitting a straggler's outstanding lease.
    pub leases_stolen: u64,
    /// Leases re-queued after a deadline expiry or worker death.
    pub re_queued: u64,
    /// Connections that dropped while holding at least one lease.
    pub worker_deaths: u64,
    /// Leases whose full range reached the merged artifact.
    pub leases_completed: u64,
    /// Rows folded into the output (each grid cell merges exactly once).
    pub rows_merged: u64,
    /// Reported rows whose cell was already merged (steal/re-queue
    /// overlap; harmless because outcomes are deterministic).
    pub rows_duplicate: u64,
    /// Worker-side result-store hits, summed across lease reports.
    pub cache_hits: u64,
    /// Worker-side result-store misses, summed across lease reports.
    pub cache_misses: u64,
    /// Aggregated batched-simulator epoch-leap telemetry across every
    /// lease report.
    pub leap: LeapStats,
    /// The lease auto-tuner's current lease size in cells (the fixed
    /// `--lease-cells` / pre-cut size when auto-tuning is off).
    pub lease_cells_current: u64,
}

impl FabricSnapshot {
    /// The one-line summary the coordinator prints on stderr at exit
    /// (the CI smoke step greps `re_queued=` out of it).
    pub fn summary_line(&self) -> String {
        format!(
            "fabric: leases_issued={} leases_stolen={} re_queued={} worker_deaths={} \
             leases_completed={} rows_merged={} rows_duplicate={} cache_hits={} cache_misses={} \
             lease_cells={}",
            self.leases_issued,
            self.leases_stolen,
            self.re_queued,
            self.worker_deaths,
            self.leases_completed,
            self.rows_merged,
            self.rows_duplicate,
            self.cache_hits,
            self.cache_misses,
            self.lease_cells_current
        )
    }

    /// Renders the `stats`-op response frame.
    pub fn frame(&self) -> String {
        Json::Obj(vec![
            ("ok".into(), Json::Str("stats".into())),
            ("leases_issued".into(), Json::num(self.leases_issued)),
            ("leases_stolen".into(), Json::num(self.leases_stolen)),
            ("re_queued".into(), Json::num(self.re_queued)),
            ("worker_deaths".into(), Json::num(self.worker_deaths)),
            ("leases_completed".into(), Json::num(self.leases_completed)),
            ("rows_merged".into(), Json::num(self.rows_merged)),
            ("rows_duplicate".into(), Json::num(self.rows_duplicate)),
            ("cache_hits".into(), Json::num(self.cache_hits)),
            ("cache_misses".into(), Json::num(self.cache_misses)),
            ("leap_leaps".into(), Json::num(self.leap.leaps)),
            (
                "leap_leaped_cycles".into(),
                Json::num(self.leap.leaped_cycles),
            ),
            ("leap_max_period".into(), Json::num(self.leap.max_period)),
            (
                "lease_cells_current".into(),
                Json::num(self.lease_cells_current),
            ),
        ])
        .to_string()
    }

    /// Reads a [`Self::frame`] back. `None` if `v` is not a stats frame.
    pub fn from_json(v: &Json) -> Option<FabricSnapshot> {
        if v.get("ok")?.as_str()? != "stats" {
            return None;
        }
        let n = |key: &str| v.get(key).and_then(Json::as_u64);
        Some(FabricSnapshot {
            leases_issued: n("leases_issued")?,
            leases_stolen: n("leases_stolen")?,
            re_queued: n("re_queued")?,
            worker_deaths: n("worker_deaths")?,
            leases_completed: n("leases_completed")?,
            rows_merged: n("rows_merged")?,
            rows_duplicate: n("rows_duplicate")?,
            cache_hits: n("cache_hits")?,
            cache_misses: n("cache_misses")?,
            leap: LeapStats {
                leaps: n("leap_leaps")?,
                leaped_cycles: n("leap_leaped_cycles")?,
                max_period: n("leap_max_period")?,
            },
            lease_cells_current: n("lease_cells_current")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_frame_round_trips() {
        let c = FabricCounters::new();
        c.add_issued(4);
        c.add_stolen(1);
        c.add_re_queued(2);
        c.add_worker_deaths(1);
        c.add_completed(3);
        c.add_rows_merged(96);
        c.add_rows_duplicate(8);
        c.add_cache_hits(40);
        c.add_cache_misses(56);
        c.record_leap(LeapStats {
            leaps: 7,
            leaped_cycles: 1234,
            max_period: 9,
        });
        c.record_leap(LeapStats {
            leaps: 1,
            leaped_cycles: 6,
            max_period: 3,
        });
        c.set_lease_cells(96);
        c.set_lease_cells(128);
        let snap = c.snapshot();
        assert_eq!(snap.leap.max_period, 9, "max_period takes the maximum");
        assert_eq!(snap.lease_cells_current, 128, "gauge keeps the last value");
        let v = stg_service::json::parse(&snap.frame()).unwrap();
        assert_eq!(FabricSnapshot::from_json(&v), Some(snap));
        let line = snap.summary_line();
        assert!(line.contains("re_queued=2"), "{line}");
        assert!(line.contains("leases_stolen=1"), "{line}");
        assert!(line.contains("lease_cells=128"), "{line}");
    }
}
