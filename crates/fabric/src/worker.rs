//! The fabric worker: connects to a coordinator, leases cell ranges,
//! evaluates them in small chunks through the shared sweep engine, and
//! reports rows back until told to drain.
//!
//! Workers are expendable by design: any post-handshake I/O failure is a
//! graceful drain (the coordinator re-queues whatever this worker held),
//! and a `gone` ack makes the worker abandon the lease immediately. The
//! only hard errors are connect/handshake failures and a spec whose
//! fingerprint disagrees with the coordinator's — evaluating under a
//! mismatched grid would silently corrupt the merge.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use stg_experiments::store::ResultStore;
use stg_experiments::SweepSpec;
use stg_service::read_frame;

use crate::protocol::{FabricRequest, FabricResponse, MAX_FRAME_BYTES, MAX_ROWS_PER_FRAME};

/// Cells evaluated (and reported) per chunk: small enough that steals and
/// kill-mid-lease re-queues lose little work, large enough to amortize
/// the round-trip. Bounded by [`MAX_ROWS_PER_FRAME`].
const CHUNK_CELLS: usize = 32;

/// Worker tuning knobs.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// Result-store directory override; `None` uses the directory the
    /// coordinator advertises (if any).
    pub cache_dir: Option<PathBuf>,
    /// Evaluation thread count (`None` = the engine default).
    pub threads: Option<usize>,
    /// Artificial per-cell delay before each chunk — a deterministic
    /// hook for the kill-mid-lease fault tests; zero in production.
    pub eval_delay: Duration,
    /// Worker name reported in the handshake (diagnostics only).
    pub name: String,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            addr: String::new(),
            cache_dir: None,
            threads: None,
            eval_delay: Duration::ZERO,
            name: "worker".into(),
        }
    }
}

/// What a drained worker reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Leases this worker served (including stolen ones it received).
    pub leases: u64,
    /// Rows it reported to the coordinator.
    pub rows_reported: u64,
}

/// One coordinator exchange: send `req`, read one response frame.
fn exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    req: &FabricRequest,
) -> Result<FabricResponse, String> {
    let mut frame = req.frame();
    frame.push('\n');
    stream
        .write_all(frame.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send: {e}"))?;
    match read_frame(reader, MAX_FRAME_BYTES).map_err(|e| format!("recv: {e}"))? {
        Some(Ok(line)) => FabricResponse::parse(&line),
        Some(Err(len)) => Err(format!("oversize {len}-byte response frame")),
        None => Err("coordinator closed the connection".to_string()),
    }
}

/// Runs one worker to drain: handshake, lease/evaluate/report loop,
/// graceful exit on `drain` or lost coordinator.
pub fn run_worker(config: WorkerConfig) -> Result<WorkerReport, String> {
    let mut stream =
        TcpStream::connect(&config.addr).map_err(|e| format!("connect {}: {e}", config.addr))?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );

    // Handshake: fetch the spec and verify we expand the same grid.
    let hello = FabricRequest::Hello {
        name: config.name.clone(),
    };
    let (mut spec, cache_dir) = match exchange(&mut stream, &mut reader, &hello)? {
        FabricResponse::Spec {
            spec,
            fingerprint,
            total,
            cache_dir,
        } => {
            let spec = SweepSpec::decode_spec(&spec)?;
            if spec.grid_fingerprint() != fingerprint {
                return Err(format!(
                    "spec fingerprint mismatch: coordinator {fingerprint:016x}, \
                     local {:016x} (version skew?)",
                    spec.grid_fingerprint()
                ));
            }
            if spec.total_cases() != total {
                return Err(format!(
                    "grid size mismatch: coordinator {total}, local {}",
                    spec.total_cases()
                ));
            }
            (spec, cache_dir)
        }
        FabricResponse::Error { error } => return Err(format!("handshake rejected: {error}")),
        other => return Err(format!("unexpected handshake reply: {}", other.frame())),
    };
    spec.threads = config.threads;
    let store = match config.cache_dir.clone().or(cache_dir.map(PathBuf::from)) {
        Some(dir) => Some(
            ResultStore::at_dir(&dir)
                .map_err(|e| format!("open cache dir {}: {e}", dir.display()))?,
        ),
        None => None,
    };

    let mut report = WorkerReport::default();
    loop {
        let next = FabricRequest::Next {
            name: config.name.clone(),
        };
        match exchange(&mut stream, &mut reader, &next) {
            Ok(FabricResponse::Lease {
                lease, start, end, ..
            }) => {
                report.leases += 1;
                report.rows_reported += serve_lease(
                    &mut stream,
                    &mut reader,
                    &spec,
                    store.as_ref(),
                    &config,
                    lease,
                    start,
                    end,
                )?;
            }
            Ok(FabricResponse::Wait { ms }) => {
                std::thread::sleep(Duration::from_millis(ms.min(1_000)));
            }
            Ok(FabricResponse::Drain) => break,
            Ok(FabricResponse::Error { error }) => return Err(format!("coordinator: {error}")),
            Ok(other) => return Err(format!("unexpected next reply: {}", other.frame())),
            // Lost coordinator after handshake: our leases re-queue.
            Err(_) => break,
        }
    }
    if let Some(store) = &store {
        store.flush();
    }
    Ok(report)
}

/// Evaluates one lease chunk-by-chunk, truncating to each ack's `end`
/// (the lease shrinks when another worker steals its upper half).
#[allow(clippy::too_many_arguments)]
fn serve_lease(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    spec: &SweepSpec,
    store: Option<&ResultStore>,
    config: &WorkerConfig,
    lease: u64,
    start: usize,
    mut end: usize,
) -> Result<u64, String> {
    let mut reported = 0u64;
    let mut pos = start;
    while pos < end {
        let chunk_end = (pos + CHUNK_CELLS.min(MAX_ROWS_PER_FRAME)).min(end);
        if !config.eval_delay.is_zero() {
            // Deterministic straggler/kill window for the fault tests.
            std::thread::sleep(config.eval_delay * (chunk_end - pos) as u32);
        }
        let before = store.map(|s| s.stats()).unwrap_or_default();
        let result = spec.run_cases(spec.cases_slice(pos..chunk_end), store);
        let delta = store.map(|s| s.stats().since(&before)).unwrap_or_default();
        let rows: Vec<_> = result
            .runs
            .into_iter()
            .map(|run| (run.case.index, run.outcome))
            .collect();
        reported += rows.len() as u64;
        let req = FabricRequest::Rows {
            lease,
            rows,
            hits: delta.hits,
            misses: delta.misses,
            leap: result.leap,
        };
        match exchange(stream, reader, &req) {
            Ok(FabricResponse::Ack { end: new_end }) => {
                end = new_end;
                pos = chunk_end;
            }
            // Lease re-queued or stolen out from under us: abandon it.
            Ok(FabricResponse::Gone) => break,
            Ok(FabricResponse::Error { error }) => return Err(format!("coordinator: {error}")),
            Ok(other) => return Err(format!("unexpected rows reply: {}", other.frame())),
            // Lost coordinator: stop; the lease deadline re-queues it.
            Err(_) => break,
        }
    }
    Ok(reported)
}
