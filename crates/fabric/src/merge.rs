//! Bounded-memory stream-merge: folds completed rows into the output
//! artifact incrementally, in case-index order, never holding the full
//! result set.
//!
//! The merger owns the output writer. The header goes out immediately;
//! each merged row is rendered through the engine's shared emitters
//! ([`stg_experiments::csv_row`] / [`stg_experiments::json_row`] — the
//! same functions behind [`Sweep::to_csv`](stg_experiments::Sweep::to_csv)),
//! so the streamed artifact is byte-identical to an unsharded in-process
//! run. Out-of-order arrivals buffer in a [`BTreeMap`] until the next
//! emission index arrives; because the coordinator issues leases in index
//! order, the buffer is bounded by the outstanding-lease spread, not the
//! grid size.

use std::collections::BTreeMap;
use std::io::Write;

use stg_experiments::store::Outcome;
use stg_experiments::{csv_header, csv_row, json_epilogue, json_prelude, json_row, SweepSpec};

/// Which artifact the merger streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputKind {
    /// The `sweep` CSV artifact ([`Sweep::to_csv`](stg_experiments::Sweep::to_csv)).
    Csv,
    /// The `sweep --json` artifact ([`Sweep::to_json`](stg_experiments::Sweep::to_json)).
    Json,
}

/// Failure-count tallies of the merged rows, mirroring the unsharded
/// sweep's exit-code inputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeTallies {
    /// Rows that failed to schedule.
    pub errors: usize,
    /// Validated rows whose simulation did not complete.
    pub deadlocks: usize,
    /// Validated rows on which the simulators diverged.
    pub divergences: usize,
}

/// The streaming merger: push rows in any order, exactly-once per index
/// enforced internally, output emitted in index order.
pub struct StreamMerger<W: Write> {
    spec: SweepSpec,
    kind: OutputKind,
    out: W,
    total: usize,
    next_emit: usize,
    buffered: BTreeMap<usize, Outcome>,
    merged: Vec<bool>,
    merged_count: usize,
    peak_buffered: usize,
    tallies: MergeTallies,
}

impl<W: Write> StreamMerger<W> {
    /// Opens the merger over `out` and writes the artifact header. The
    /// spec must be the distributed sweep's spec (rows are rendered by
    /// expanding one case per index from it).
    pub fn new(spec: SweepSpec, kind: OutputKind, mut out: W) -> std::io::Result<StreamMerger<W>> {
        let total = spec.total_cases();
        match kind {
            OutputKind::Csv => out.write_all(csv_header(spec.timing).as_bytes())?,
            OutputKind::Json => out.write_all(json_prelude(&spec).as_bytes())?,
        }
        Ok(StreamMerger {
            spec,
            kind,
            out,
            total,
            next_emit: 0,
            buffered: BTreeMap::new(),
            merged: vec![false; total],
            merged_count: 0,
            peak_buffered: 0,
            tallies: MergeTallies::default(),
        })
    }

    /// True once `index` has been merged (first writer wins).
    pub fn is_merged(&self, index: usize) -> bool {
        self.merged[index]
    }

    /// Rows merged so far.
    pub fn merged_count(&self) -> usize {
        self.merged_count
    }

    /// True once every cell of the grid is merged.
    pub fn done(&self) -> bool {
        self.merged_count == self.total
    }

    /// High-water mark of rows buffered awaiting in-order emission — the
    /// bounded-memory tests assert this stays far below the grid size.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Failure counts of the merged rows.
    pub fn tallies(&self) -> MergeTallies {
        self.tallies
    }

    /// Offers one row. Returns `Ok(true)` if it was new (merged), or
    /// `Ok(false)` if the index was already merged (a duplicate from a
    /// steal/re-queue overlap — harmless, outcomes are deterministic).
    /// Out-of-range indices are an error (a corrupt or foreign report).
    pub fn push(&mut self, index: usize, outcome: Outcome) -> Result<bool, String> {
        if index >= self.total {
            return Err(format!(
                "row index {index} out of range for a {}-cell grid",
                self.total
            ));
        }
        if self.merged[index] {
            return Ok(false);
        }
        self.merged[index] = true;
        self.merged_count += 1;
        self.tally(&outcome);
        self.buffered.insert(index, outcome);
        self.peak_buffered = self.peak_buffered.max(self.buffered.len());
        self.drain().map_err(|e| format!("merge output: {e}"))?;
        Ok(true)
    }

    /// Emits the contiguous prefix that is now available.
    fn drain(&mut self) -> std::io::Result<()> {
        while let Some(outcome) = self.buffered.remove(&self.next_emit) {
            let case = self
                .spec
                .cases_slice(self.next_emit..self.next_emit + 1)
                .pop()
                .expect("index in range");
            let row = match self.kind {
                OutputKind::Csv => csv_row(&case, &outcome, self.spec.timing),
                OutputKind::Json => json_row(
                    &case,
                    &outcome,
                    self.spec.timing,
                    self.next_emit + 1 == self.total,
                ),
            };
            self.out.write_all(row.as_bytes())?;
            self.next_emit += 1;
        }
        Ok(())
    }

    /// Writes the artifact epilogue and flushes. Errors unless every cell
    /// merged — a truncated artifact must never look complete.
    pub fn finish(mut self) -> Result<MergeReport, String> {
        if !self.done() {
            return Err(format!(
                "merge incomplete: {} of {} cells merged",
                self.merged_count, self.total
            ));
        }
        let io = |e: std::io::Error| format!("merge output: {e}");
        if self.kind == OutputKind::Json {
            self.out.write_all(json_epilogue().as_bytes()).map_err(io)?;
        }
        self.out.flush().map_err(io)?;
        Ok(MergeReport {
            rows: self.merged_count,
            peak_buffered: self.peak_buffered,
            tallies: self.tallies,
        })
    }

    fn tally(&mut self, outcome: &Outcome) {
        match outcome {
            Err(_) => self.tallies.errors += 1,
            Ok(r) => {
                if let Some(s) = r.sim {
                    if !s.completed {
                        self.tallies.deadlocks += 1;
                    }
                    if s.diverged {
                        self.tallies.divergences += 1;
                    }
                }
            }
        }
    }
}

/// What [`StreamMerger::finish`] reports about a completed merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeReport {
    /// Rows merged (always the full grid).
    pub rows: usize,
    /// High-water mark of the out-of-order buffer.
    pub peak_buffered: usize,
    /// Failure counts for exit-code decisions.
    pub tallies: MergeTallies,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        let mut spec = SweepSpec::paper(2, 0xFAB_0001);
        spec.workloads.truncate(2);
        spec.validate = true;
        spec.threads = Some(2);
        spec
    }

    #[test]
    fn in_order_stream_matches_sweep_output() {
        let spec = spec();
        let sweep = spec.run();
        for (kind, expected) in [
            (OutputKind::Csv, sweep.to_csv()),
            (OutputKind::Json, sweep.to_json()),
        ] {
            let out = SharedBuf::default();
            let mut m = StreamMerger::new(spec.clone(), kind, out.clone()).unwrap();
            for run in &sweep.runs {
                assert!(m.push(run.case.index, run.outcome.clone()).unwrap());
            }
            assert!(m.done());
            assert_eq!(m.peak_buffered(), 1, "in-order arrivals never buffer");
            let report = m.finish().unwrap();
            assert_eq!(report.rows, sweep.runs.len());
            assert_eq!(out.take(), expected, "{kind:?}");
        }
    }

    #[test]
    fn shuffled_stream_is_byte_identical_and_duplicate_safe() {
        let spec = spec();
        let sweep = spec.run();
        for (kind, expected) in [
            (OutputKind::Csv, sweep.to_csv()),
            (OutputKind::Json, sweep.to_json()),
        ] {
            let out = SharedBuf::default();
            let mut m = StreamMerger::new(spec.clone(), kind, out.clone()).unwrap();
            // Reverse order maximizes buffering; every row duplicated.
            for run in sweep.runs.iter().rev() {
                assert!(m.push(run.case.index, run.outcome.clone()).unwrap());
                assert!(!m.push(run.case.index, run.outcome.clone()).unwrap());
            }
            // The final push (index 0) briefly buffers before draining,
            // so the high-water mark is the full row count.
            assert_eq!(m.peak_buffered(), sweep.runs.len());
            let report = m.finish().unwrap();
            assert_eq!(report.rows, sweep.runs.len());
            assert_eq!(report.tallies.errors, 0);
            assert_eq!(out.take(), expected, "{kind:?}");
        }
    }

    #[test]
    fn incomplete_merge_refuses_to_finish() {
        let spec = spec();
        let m = StreamMerger::new(spec, OutputKind::Csv, Vec::new()).unwrap();
        let err = m.finish().unwrap_err();
        assert!(err.contains("incomplete"), "{err}");
    }

    #[test]
    fn out_of_range_rows_are_rejected() {
        let spec = spec();
        let sweep = spec.run();
        let total = sweep.runs.len();
        let mut m = StreamMerger::new(spec, OutputKind::Csv, Vec::new()).unwrap();
        let outcome = sweep.runs[0].outcome.clone();
        assert!(m.push(total, outcome).is_err());
    }

    /// A cloneable in-memory writer for asserting streamed bytes.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn take(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
