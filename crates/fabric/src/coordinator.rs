//! The fabric coordinator: expands a [`SweepSpec`] into cell-range lease
//! units, serves them to workers over loopback TCP, and stream-merges the
//! reported rows into the final artifact.
//!
//! ## Lease lifecycle
//!
//! The grid is cut into contiguous ranges of `lease_cells` cells, queued
//! in index order. A worker's `next` request pops the queue; when the
//! queue is empty the coordinator **steals**: the largest outstanding
//! lease with at least two remaining cells is split at its midpoint, the
//! original owner keeps the lower half (its next `rows` ack tells it the
//! new end), and the upper half is issued as a fresh lease. Every lease
//! carries a deadline, refreshed by each accepted `rows`/`ping` frame;
//! an expired or connection-dropped lease has its **unmerged** subranges
//! re-queued at the front of the queue. Rows merge exactly once per cell
//! (first writer wins) — outcomes are deterministic, so duplicates from
//! steal/re-queue overlap are dropped, not conflicting.
//!
//! The merged artifact is byte-identical to an unsharded `sweep` run of
//! the same spec regardless of worker count, steals, and deaths.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use stg_experiments::SweepSpec;
use stg_service::read_frame;

use crate::counters::{FabricCounters, FabricSnapshot};
use crate::merge::{MergeReport, OutputKind, StreamMerger};
use crate::protocol::{FabricRequest, FabricResponse, MAX_FRAME_BYTES};

/// Coordinator tuning knobs.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral loopback port).
    pub addr: String,
    /// Cells per lease; `0` picks `max(1, min(256, total/32))` — small
    /// enough to work-steal, large enough to amortize a round-trip.
    pub lease_cells: usize,
    /// Lease deadline budget; an unrefreshed lease is re-queued after
    /// this long.
    pub lease_timeout: Duration,
    /// Shared result-store directory advertised to workers.
    pub cache_dir: Option<PathBuf>,
    /// Artifact format to stream.
    pub kind: OutputKind,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            addr: "127.0.0.1:0".into(),
            lease_cells: 0,
            lease_timeout: Duration::from_millis(30_000),
            cache_dir: None,
            kind: OutputKind::Csv,
        }
    }
}

/// What a completed coordinator run reports.
#[derive(Clone, Copy, Debug)]
pub struct FabricRunReport {
    /// The stream-merge outcome (row count, buffer high-water mark,
    /// failure tallies for exit codes).
    pub merge: MergeReport,
    /// Final counter values.
    pub counters: FabricSnapshot,
}

/// One outstanding lease.
struct Lease {
    range: Range<usize>,
    conn: u64,
    deadline: Instant,
    /// When the last `rows` ack (or the issue itself) happened — the
    /// inter-ack interval feeds the lease auto-tuner.
    served_since: Instant,
}

/// EWMA-driven lease sizing, active only in auto mode (`--lease-cells 0`).
///
/// Every accepted `rows` frame contributes one sample — the inter-ack
/// wall-clock divided by the rows reported — to an exponentially weighted
/// moving average of per-cell latency. The target lease size is whatever
/// covers [`LeaseTuner::TARGET_ACK_MS`] of work at that rate, bounded to
/// [`LeaseTuner::MIN_CELLS`]..=[`LeaseTuner::MAX_CELLS`]: fast grids grow
/// leases (fewer round-trips), slow or straggling grids shrink them
/// (finer steal/re-queue granularity). An explicit `--lease-cells` pins
/// the size and disables the tuner entirely.
pub struct LeaseTuner {
    auto: bool,
    ewma_us_per_cell: f64,
    target: usize,
}

impl LeaseTuner {
    /// Aimed-for wall-clock covered by one lease.
    pub const TARGET_ACK_MS: u64 = 250;
    /// Smallest auto-tuned lease.
    pub const MIN_CELLS: usize = 8;
    /// Largest auto-tuned lease.
    pub const MAX_CELLS: usize = 4096;
    /// EWMA weight of the newest sample.
    const ALPHA: f64 = 0.3;

    /// A tuner starting at `initial` cells; inert unless `auto`.
    pub fn new(auto: bool, initial: usize) -> LeaseTuner {
        LeaseTuner {
            auto,
            ewma_us_per_cell: 0.0,
            target: initial,
        }
    }

    /// Folds one ack covering `cells` cells over `elapsed` into the
    /// average and recomputes the target size.
    pub fn observe(&mut self, cells: u64, elapsed: Duration) {
        if !self.auto || cells == 0 {
            return;
        }
        let sample = elapsed.as_secs_f64() * 1e6 / cells as f64;
        self.ewma_us_per_cell = if self.ewma_us_per_cell == 0.0 {
            sample
        } else {
            Self::ALPHA * sample + (1.0 - Self::ALPHA) * self.ewma_us_per_cell
        };
        let budget_us = (Self::TARGET_ACK_MS * 1_000) as f64;
        let cells = budget_us / self.ewma_us_per_cell.max(f64::MIN_POSITIVE);
        self.target = (cells as usize).clamp(Self::MIN_CELLS, Self::MAX_CELLS);
    }

    /// The current lease size in cells.
    pub fn target(&self) -> usize {
        self.target
    }
}

/// Mutable coordinator state, shared by every connection thread.
struct State<W: Write> {
    pending: VecDeque<Range<usize>>,
    outstanding: HashMap<u64, Lease>,
    next_lease: u64,
    tuner: LeaseTuner,
    /// `None` once the merge finished (drain phase) or failed fatally.
    merger: Option<StreamMerger<W>>,
    merge_error: Option<String>,
}

impl<W: Write> State<W> {
    fn done(&self) -> bool {
        self.merge_error.is_some() || self.merger.as_ref().is_none_or(|m| m.done())
    }

    fn is_merged(&self, index: usize) -> bool {
        self.merger.as_ref().is_none_or(|m| m.is_merged(index))
    }

    /// The maximal unmerged subranges of `range`, in order.
    fn unmerged_subranges(&self, range: Range<usize>) -> Vec<Range<usize>> {
        let mut out: Vec<Range<usize>> = Vec::new();
        for i in range {
            if self.is_merged(i) {
                continue;
            }
            match out.last_mut() {
                Some(last) if last.end == i => last.end = i + 1,
                _ => out.push(i..i + 1),
            }
        }
        out
    }
}

struct Shared<W: Write> {
    state: Mutex<State<W>>,
    cv: Condvar,
    counters: Arc<FabricCounters>,
    spec_block: String,
    fingerprint: u64,
    total: usize,
    cache_dir: Option<String>,
    lease_timeout: Duration,
}

/// A bound, not-yet-running coordinator. [`Self::bind`] early so workers
/// can be pointed at [`Self::addr`] before [`Self::run`] blocks.
pub struct Coordinator {
    listener: TcpListener,
    spec: SweepSpec,
    spec_block: String,
    fingerprint: u64,
    config: FabricConfig,
    counters: Arc<FabricCounters>,
}

impl Coordinator {
    /// Binds the coordinator socket and validates the spec (fixed-graph
    /// workloads cannot distribute — they have no parseable spec string).
    pub fn bind(spec: SweepSpec, config: FabricConfig) -> Result<Coordinator, String> {
        if spec.timing {
            return Err("--sim-timing is not supported for distributed sweeps \
                        (timings are per-worker and non-deterministic)"
                .to_string());
        }
        let spec_block = spec.encode_spec()?;
        let fingerprint = spec.grid_fingerprint();
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        Ok(Coordinator {
            listener,
            spec,
            spec_block,
            fingerprint,
            config,
            counters: Arc::new(FabricCounters::new()),
        })
    }

    /// The bound socket address (pass to workers via `--connect`).
    pub fn addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// The live counters (for progress displays; [`Self::run`] returns
    /// the final snapshot).
    pub fn counters(&self) -> Arc<FabricCounters> {
        Arc::clone(&self.counters)
    }

    /// Serves leases until every cell of the grid is merged into `out`,
    /// then drains workers and returns. The artifact bytes written to
    /// `out` are byte-identical to `spec.run().to_csv()` (or `to_json()`)
    /// no matter how many workers served, stole, or died.
    pub fn run<W: Write + Send + 'static>(self, out: W) -> Result<FabricRunReport, String> {
        let total = self.spec.total_cases();
        let lease_cells = match self.config.lease_cells {
            0 => (total / 32).clamp(1, 256),
            n => n,
        };
        let merger = StreamMerger::new(self.spec.clone(), self.config.kind, out)
            .map_err(|e| format!("open output: {e}"))?;
        let mut pending = VecDeque::new();
        let mut at = 0;
        while at < total {
            let end = (at + lease_cells).min(total);
            pending.push_back(at..end);
            at = end;
        }
        self.counters.set_lease_cells(lease_cells as u64);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                pending,
                outstanding: HashMap::new(),
                next_lease: 0,
                tuner: LeaseTuner::new(self.config.lease_cells == 0, lease_cells),
                merger: Some(merger),
                merge_error: None,
            }),
            cv: Condvar::new(),
            counters: Arc::clone(&self.counters),
            spec_block: self.spec_block.clone(),
            fingerprint: self.fingerprint,
            total,
            cache_dir: self
                .config
                .cache_dir
                .as_ref()
                .map(|d| d.display().to_string()),
            lease_timeout: self.config.lease_timeout,
        });

        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.addr();
        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let listener = self.listener;
            std::thread::spawn(move || {
                let mut conn_id = 0u64;
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    conn_id += 1;
                    let shared = Arc::clone(&shared);
                    let id = conn_id;
                    std::thread::spawn(move || serve_connection(shared, stream, id));
                }
            })
        };

        // Wait for the merge to complete (or fail).
        let report = {
            let mut state = shared.state.lock().expect("fabric state lock");
            while !state.done() {
                // Waking periodically lets deadline expiry make progress
                // even if every worker died silently.
                let (s, _timeout) = shared
                    .cv
                    .wait_timeout(state, Duration::from_millis(100))
                    .expect("fabric state lock");
                state = s;
                expire_leases(&mut state, &shared.counters, shared.lease_timeout);
            }
            if let Some(e) = state.merge_error.take() {
                Err(e)
            } else {
                let merger = state.merger.take().expect("merger present until taken");
                merger.finish()
            }
        };

        // Stop the accept loop: flag + a wake-up connection.
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        let _ = accept.join();

        Ok(FabricRunReport {
            merge: report?,
            counters: self.counters.snapshot(),
        })
    }
}

/// Re-queues every outstanding lease whose deadline passed.
fn expire_leases<W: Write>(state: &mut State<W>, counters: &FabricCounters, _timeout: Duration) {
    let now = Instant::now();
    let expired: Vec<u64> = state
        .outstanding
        .iter()
        .filter(|(_, l)| l.deadline <= now)
        .map(|(&id, _)| id)
        .collect();
    for id in expired {
        let lease = state.outstanding.remove(&id).expect("listed above");
        requeue(state, counters, lease.range);
    }
}

/// Puts the unmerged subranges of a dead lease back at the front of the
/// queue (front, not back: re-queued cells gate the in-order emission
/// prefix, so they must be re-evaluated first).
fn requeue<W: Write>(state: &mut State<W>, counters: &FabricCounters, range: Range<usize>) {
    let subranges = state.unmerged_subranges(range);
    if subranges.is_empty() {
        return;
    }
    counters.add_re_queued(1);
    for r in subranges.into_iter().rev() {
        state.pending.push_front(r);
    }
}

/// Advances every outstanding lease past its merged prefix; fully merged
/// leases complete. Returns whether `lease_id` is still outstanding.
fn advance_leases<W: Write>(state: &mut State<W>, counters: &FabricCounters) {
    let ids: Vec<u64> = state.outstanding.keys().copied().collect();
    for id in ids {
        let lease = state.outstanding.get(&id).expect("listed above");
        let mut start = lease.range.start;
        let end = lease.range.end;
        while start < end && state.is_merged(start) {
            start += 1;
        }
        let lease = state.outstanding.get_mut(&id).expect("listed above");
        lease.range.start = start;
        if start >= end {
            state.outstanding.remove(&id);
            counters.add_completed(1);
        }
    }
}

/// One worker connection: strict request/response over newline JSON.
fn serve_connection<W: Write>(shared: Arc<Shared<W>>, stream: TcpStream, conn: u64) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Ok(Some(Ok(line))) => line,
            Ok(Some(Err(len))) => {
                let resp = FabricResponse::Error {
                    error: format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES} bound"),
                };
                if write_frame(&mut writer, &resp).is_err() {
                    break;
                }
                continue;
            }
            Ok(None) | Err(_) => break, // disconnect
        };
        if frame.is_empty() {
            continue;
        }
        let resp = match FabricRequest::parse(&frame) {
            Ok(req) => handle(&shared, conn, req),
            Err(error) => FabricResponse::Error { error },
        };
        if write_frame(&mut writer, &resp).is_err() {
            break;
        }
    }
    // Connection gone: re-queue whatever this worker still held.
    let mut state = shared.state.lock().expect("fabric state lock");
    let held: Vec<u64> = state
        .outstanding
        .iter()
        .filter(|(_, l)| l.conn == conn)
        .map(|(&id, _)| id)
        .collect();
    if !held.is_empty() {
        shared.counters.add_worker_deaths(1);
        for id in held {
            let lease = state.outstanding.remove(&id).expect("listed above");
            requeue(&mut state, &shared.counters, lease.range);
        }
    }
    shared.cv.notify_all();
}

fn write_frame<S: Write>(writer: &mut BufWriter<S>, resp: &FabricResponse) -> std::io::Result<()> {
    writer.write_all(resp.frame().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Executes one request under the state lock.
fn handle<W: Write>(shared: &Shared<W>, conn: u64, req: FabricRequest) -> FabricResponse {
    let counters = &*shared.counters;
    let mut state = shared.state.lock().expect("fabric state lock");
    match req {
        FabricRequest::Hello { .. } => FabricResponse::Spec {
            spec: shared.spec_block.clone(),
            fingerprint: shared.fingerprint,
            total: shared.total,
            cache_dir: shared.cache_dir.clone(),
        },
        FabricRequest::Stats => FabricResponse::Stats(counters.snapshot()),
        FabricRequest::Next { .. } => {
            expire_leases(&mut state, counters, shared.lease_timeout);
            if state.done() {
                return FabricResponse::Drain;
            }
            let deadline_ms = shared.lease_timeout.as_millis() as u64;
            if let Some(mut range) = state.pending.pop_front() {
                // Auto mode re-cuts at issue time: absorb contiguous
                // successor ranges up to the tuner's target, or split an
                // oversized range and return the tail to the queue front.
                // An explicit `--lease-cells` skips this entirely.
                if state.tuner.auto {
                    let target = state.tuner.target();
                    while range.len() < target {
                        match state.pending.front() {
                            Some(next) if next.start == range.end => {
                                range.end = state.pending.pop_front().expect("checked front").end;
                            }
                            _ => break,
                        }
                    }
                    if range.len() > target {
                        state.pending.push_front(range.start + target..range.end);
                        range.end = range.start + target;
                    }
                }
                counters.add_issued(1);
                let (lease, start, end) = issue(&mut state, conn, range, shared.lease_timeout);
                return FabricResponse::Lease {
                    lease,
                    start,
                    end,
                    deadline_ms,
                };
            }
            // Work-steal: split the largest outstanding remainder.
            let victim = state
                .outstanding
                .iter()
                .filter(|(_, l)| l.range.len() >= 2)
                .max_by_key(|(_, l)| l.range.len())
                .map(|(&id, _)| id);
            if let Some(id) = victim {
                let l = state.outstanding.get_mut(&id).expect("chosen above");
                let mid = l.range.start + l.range.len() / 2;
                let stolen = mid..l.range.end;
                l.range.end = mid;
                counters.add_stolen(1);
                let (lease, start, end) = issue(&mut state, conn, stolen, shared.lease_timeout);
                return FabricResponse::Lease {
                    lease,
                    start,
                    end,
                    deadline_ms,
                };
            }
            FabricResponse::Wait { ms: 50 }
        }
        FabricRequest::Ping { lease } => match state.outstanding.get_mut(&lease) {
            Some(l) if l.conn == conn => {
                l.deadline = Instant::now() + shared.lease_timeout;
                FabricResponse::Ack { end: l.range.end }
            }
            _ => FabricResponse::Gone,
        },
        FabricRequest::Rows {
            lease,
            rows,
            hits,
            misses,
            leap,
        } => {
            counters.add_cache_hits(hits);
            counters.add_cache_misses(misses);
            counters.record_leap(leap);
            let rows_reported = rows.len() as u64;
            let mut merged = 0u64;
            let mut duplicate = 0u64;
            for (index, outcome) in rows {
                match &mut state.merger {
                    Some(m) => match m.push(index, outcome) {
                        Ok(true) => merged += 1,
                        Ok(false) => duplicate += 1,
                        Err(e) => {
                            state.merge_error = Some(e.clone());
                            state.merger = None;
                            shared.cv.notify_all();
                            return FabricResponse::Error { error: e };
                        }
                    },
                    // Drain phase: everything is merged already.
                    None => duplicate += 1,
                }
            }
            counters.add_rows_merged(merged);
            counters.add_rows_duplicate(duplicate);
            advance_leases(&mut state, counters);
            if state.done() {
                shared.cv.notify_all();
            }
            let ack = match state.outstanding.get_mut(&lease) {
                Some(l) if l.conn == conn => {
                    let elapsed = l.served_since.elapsed();
                    l.served_since = Instant::now();
                    l.deadline = Instant::now() + shared.lease_timeout;
                    Some((l.range.end, elapsed))
                }
                _ => None,
            };
            match ack {
                Some((end, elapsed)) => {
                    state.tuner.observe(rows_reported, elapsed);
                    counters.set_lease_cells(state.tuner.target() as u64);
                    FabricResponse::Ack { end }
                }
                None => FabricResponse::Gone,
            }
        }
    }
}

/// Registers a fresh lease for `conn` over `range`.
fn issue<W: Write>(
    state: &mut State<W>,
    conn: u64,
    range: Range<usize>,
    timeout: Duration,
) -> (u64, usize, usize) {
    let id = state.next_lease;
    state.next_lease += 1;
    let (start, end) = (range.start, range.end);
    state.outstanding.insert(
        id,
        Lease {
            range,
            conn,
            deadline: Instant::now() + timeout,
            served_since: Instant::now(),
        },
    );
    (id, start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_tracks_toward_the_ack_budget() {
        let mut t = LeaseTuner::new(true, 64);
        assert_eq!(t.target(), 64);
        // 1ms per cell → 250ms budget covers 250 cells.
        for _ in 0..32 {
            t.observe(10, Duration::from_millis(10));
        }
        assert_eq!(t.target(), 250);
        // Much faster cells grow the lease, but never past the cap.
        for _ in 0..64 {
            t.observe(1_000, Duration::from_millis(1));
        }
        assert_eq!(t.target(), LeaseTuner::MAX_CELLS);
        // A sudden straggler shrinks it again, floored at the minimum.
        for _ in 0..64 {
            t.observe(1, Duration::from_millis(5_000));
        }
        assert_eq!(t.target(), LeaseTuner::MIN_CELLS);
    }

    #[test]
    fn tuner_is_inert_when_pinned_or_fed_empty_acks() {
        let mut t = LeaseTuner::new(false, 2);
        t.observe(100, Duration::from_millis(10_000));
        assert_eq!(t.target(), 2, "explicit --lease-cells disables tuning");
        let mut t = LeaseTuner::new(true, 64);
        t.observe(0, Duration::from_millis(10_000));
        assert_eq!(t.target(), 64, "empty acks contribute no sample");
    }

    #[test]
    fn tuner_ewma_smooths_single_outliers() {
        let mut t = LeaseTuner::new(true, 64);
        for _ in 0..32 {
            t.observe(10, Duration::from_millis(10));
        }
        let steady = t.target();
        t.observe(1, Duration::from_millis(50));
        assert!(
            t.target() > LeaseTuner::MIN_CELLS,
            "one 50× outlier must not collapse the lease size: {}",
            t.target()
        );
        assert!(t.target() < steady);
    }
}
