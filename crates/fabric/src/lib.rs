//! `stg_fabric` — the distributed sweep fabric.
//!
//! A coordinator expands a [`stg_experiments::SweepSpec`] into cell-range
//! **leases** and serves them to workers over newline-JSON loopback TCP
//! (the same framing as the `stg_service` daemon). The fabric's promise
//! is the workspace's determinism contract, extended across processes:
//! the merged artifact is **byte-identical** to an unsharded `sweep` run
//! of the same spec, regardless of worker count, work-stealing splits,
//! lease re-queues, or workers killed mid-lease.
//!
//! The moving parts:
//!
//! - [`protocol`] — the request/response frames (`hello`/`next`/`rows`/
//!   `ping`/`stats`) and the hex-encoded binary row blob, reusing the
//!   shard frame's row encoding.
//! - [`coordinator`] — lease queue, work-stealing splits, deadline and
//!   connection-drop re-queue, and the drain phase.
//! - [`worker`] — lease/evaluate/report loop over the shared engine
//!   ([`stg_experiments::SweepSpec::run_cases`]), honoring steal
//!   truncation acks.
//! - [`merge`] — the bounded-memory [`merge::StreamMerger`] folding rows
//!   into the artifact in case-index order.
//! - [`counters`] — monotonic fabric counters (`leases_issued`,
//!   `leases_stolen`, `re_queued`, `worker_deaths`, …) served over the
//!   `stats` op and printed at exit.
//!
//! Entry points: the `fabric` binary (`fabric coordinate` / `fabric work`
//! / `fabric stats`) and `sweep --distributed N`, which delegates to it.

#![warn(missing_docs)]

pub mod coordinator;
pub mod counters;
pub mod merge;
pub mod protocol;
pub mod worker;

pub use coordinator::{Coordinator, FabricConfig, FabricRunReport, LeaseTuner};
pub use counters::{FabricCounters, FabricSnapshot};
pub use merge::{MergeReport, MergeTallies, OutputKind, StreamMerger};
pub use protocol::{FabricRequest, FabricResponse, MAX_FRAME_BYTES, MAX_ROWS_PER_FRAME};
pub use worker::{run_worker, WorkerConfig, WorkerReport};
