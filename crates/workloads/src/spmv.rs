//! Sparse triangular-solve (SpMV-style) task graphs.
//!
//! Models the task graph of a sparse lower-triangular solve `L·y = x`
//! with a seeded random sparsity pattern: one task per row, a unit
//! subdiagonal chaining row `i−1` into row `i` (so the system is never
//! singular and the graph is connected), and extra dependencies
//! `j → i` (`j < i−1`) drawn per seed to match the requested density.
//! Unlike the paper's four topologies, the *structure* — not just the
//! volumes — varies with the seed, mirroring how sparse-accelerator
//! simulators (SpMV/SpMSpM PIM studies) sweep matrices rather than one
//! fixed pattern. The task count stays a pure function of the spec.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stg_graph::{Dag, NodeId};
use stg_model::CanonicalGraph;

use crate::{assign_volumes, VolumeConfig, WorkloadFamily};

/// Decouples the sparsity-pattern RNG stream from the volume stream.
const PATTERN_STREAM: u64 = 0x5BA2_D15C_0F37_91E4;

/// A sparse lower-triangular solve over `rows` rows at a given density.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Spmv {
    /// Number of matrix rows (≥ 2), one task each.
    pub rows: usize,
    /// Off-diagonal density in parts per million (1 ⇒ 0.000001,
    /// 1_000_000 ⇒ fully dense lower triangle).
    pub density_ppm: u32,
}

impl Spmv {
    /// The default preset, `spmv:1024:0.01`.
    pub const DEFAULT: Spmv = Spmv {
        rows: 1024,
        density_ppm: 10_000,
    };

    /// The density as a fraction in `(0, 1]`.
    pub fn density(&self) -> f64 {
        self.density_ppm as f64 / 1e6
    }

    /// Builds the bare task DAG for one sparsity sample.
    pub fn build_dag(&self, rng: &mut StdRng) -> Dag<String, ()> {
        assert!(self.rows >= 2, "triangular solve needs at least 2 rows");
        let mut g = Dag::new();
        let rows: Vec<NodeId> = (0..self.rows)
            .map(|i| g.add_node(format!("row{i}")))
            .collect();
        for i in 1..self.rows {
            // Unit subdiagonal: row i always waits on row i-1.
            g.add_edge(rows[i - 1], rows[i], ());
            // Extra dependencies on strictly earlier rows, deterministic
            // in count (density × candidates) and seeded in position.
            let candidates = i - 1; // rows 0..i-1, excluding the subdiagonal
            let extras = ((candidates as u64 * self.density_ppm as u64) / 1_000_000) as usize;
            let mut picked = std::collections::HashSet::with_capacity(extras);
            while picked.len() < extras {
                let j = rng.gen_range(0..candidates);
                if picked.insert(j) {
                    g.add_edge(rows[j], rows[i], ());
                }
            }
        }
        g
    }
}

impl WorkloadFamily for Spmv {
    fn family(&self) -> &'static str {
        "spmv"
    }

    fn spec(&self) -> String {
        format!("spmv:{}:{}", self.rows, self.density())
    }

    fn task_count(&self) -> usize {
        self.rows
    }

    fn build(&self, seed: u64) -> CanonicalGraph {
        let mut pattern_rng = StdRng::seed_from_u64(seed ^ PATTERN_STREAM);
        let dag = self.build_dag(&mut pattern_rng);
        let mut rng = StdRng::seed_from_u64(seed);
        assign_volumes(&dag, &mut rng, &VolumeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_graph::is_acyclic;

    #[test]
    fn structure_is_connected_and_acyclic() {
        let s = Spmv {
            rows: 64,
            density_ppm: 100_000, // 0.1
        };
        let mut rng = StdRng::seed_from_u64(1);
        let dag = s.build_dag(&mut rng);
        assert_eq!(dag.node_count(), 64);
        assert!(is_acyclic(&dag));
        // The subdiagonal keeps a single entry and a single exit.
        assert_eq!(dag.sources().count(), 1);
        assert_eq!(dag.sinks().count(), 1);
        // Density adds edges beyond the chain.
        assert!(dag.edge_count() > 63);
    }

    #[test]
    fn pattern_varies_with_seed_but_count_does_not() {
        let s = Spmv {
            rows: 128,
            density_ppm: 50_000,
        };
        let a = s.build(1);
        let b = s.build(2);
        assert_eq!(a.compute_count(), s.task_count());
        assert_eq!(b.compute_count(), s.task_count());
        // Same deterministic edge count (extras per row are density-fixed).
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<(usize, usize)> = a
            .dag()
            .edges()
            .map(|(_, e)| (e.src.index(), e.dst.index()))
            .collect();
        let eb: Vec<(usize, usize)> = b
            .dag()
            .edges()
            .map(|(_, e)| (e.src.index(), e.dst.index()))
            .collect();
        assert_ne!(ea, eb, "sparsity pattern should vary with the seed");
    }

    #[test]
    fn zero_density_degenerates_to_a_chain() {
        let s = Spmv {
            rows: 16,
            density_ppm: 0,
        };
        let g = s.build(3);
        g.validate().unwrap();
        assert_eq!(g.edge_count(), 15);
    }
}
