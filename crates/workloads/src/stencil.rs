//! 2-D wavefront stencil task graphs.
//!
//! A `rows × cols` grid of tile tasks where tile `(i, j)` consumes the
//! halo data of its north `(i−1, j)` and west `(i, j−1)` neighbours — the
//! dependency pattern of Gauss–Seidel / SOR sweeps and dynamic-programming
//! wavefronts. The anti-diagonal frontier grows from 1 to `min(rows,
//! cols)` tasks, stressing partitioners with a parallelism profile that
//! ramps up and back down (cf. the graph-partition scheduling literature
//! on heterogeneous architectures).

use rand::rngs::StdRng;
use rand::SeedableRng;
use stg_graph::{Dag, NodeId};
use stg_model::CanonicalGraph;

use crate::{assign_volumes, VolumeConfig, WorkloadFamily};

/// A 2-D wavefront stencil over a `rows × cols` tile grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Stencil2d {
    /// Grid rows (≥ 1; the grid needs at least two tiles in total).
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
}

impl Stencil2d {
    /// The paper-style default size, `16 × 16` (256 tasks).
    pub const DEFAULT: Stencil2d = Stencil2d { rows: 16, cols: 16 };

    /// Builds the bare task DAG (node payload: tile label).
    pub fn build_dag(&self) -> Dag<String, ()> {
        assert!(self.rows * self.cols >= 2, "stencil needs at least 2 tiles");
        let mut g = Dag::new();
        let mut grid: Vec<Vec<NodeId>> = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let row: Vec<NodeId> = (0..self.cols)
                .map(|j| g.add_node(format!("st{i}_{j}")))
                .collect();
            for (j, &node) in row.iter().enumerate() {
                if i > 0 {
                    g.add_edge(grid[i - 1][j], node, ());
                }
                if j > 0 {
                    g.add_edge(row[j - 1], node, ());
                }
            }
            grid.push(row);
        }
        g
    }
}

impl WorkloadFamily for Stencil2d {
    fn family(&self) -> &'static str {
        "stencil2d"
    }

    fn spec(&self) -> String {
        format!("stencil2d:{}x{}", self.rows, self.cols)
    }

    fn task_count(&self) -> usize {
        self.rows * self.cols
    }

    fn build(&self, seed: u64) -> CanonicalGraph {
        let dag = self.build_dag();
        let mut rng = StdRng::seed_from_u64(seed);
        assign_volumes(&dag, &mut rng, &VolumeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_graph::is_acyclic;

    #[test]
    fn wavefront_structure() {
        let s = Stencil2d { rows: 4, cols: 3 };
        let dag = s.build_dag();
        assert_eq!(dag.node_count(), s.task_count());
        // Edges: vertical (rows-1)*cols + horizontal rows*(cols-1).
        assert_eq!(dag.edge_count(), 3 * 3 + 4 * 2);
        assert!(is_acyclic(&dag));
        // Exactly one entry (0,0) and one exit (rows-1, cols-1).
        assert_eq!(dag.sources().count(), 1);
        assert_eq!(dag.sinks().count(), 1);
    }

    #[test]
    fn generated_graphs_are_canonical_and_deterministic() {
        let s = Stencil2d::DEFAULT;
        let a = s.build(9);
        a.validate().unwrap();
        assert_eq!(a.compute_count(), 256);
        let b = s.build(9);
        let va: Vec<u64> = a.dag().edges().map(|(_, e)| e.weight).collect();
        let vb: Vec<u64> = b.dag().edges().map(|(_, e)| e.weight).collect();
        assert_eq!(va, vb);
    }
}
