//! Process-wide memoization of instantiated workload graphs.
//!
//! Sweep grids evaluate the same `(workload spec, seed)` graph once per
//! scheduler × PE cell; regenerating it each time was the engine's
//! standing hotspot. This cache keys graphs by `(spec, seed)` and hands
//! out shared `Arc`s, guaranteeing **exactly one** construction per key
//! even under concurrent instantiation: the map lock only guards slot
//! lookup, while a per-slot [`OnceLock`] serializes (and deduplicates)
//! the build itself.
//!
//! The cache never evicts on its own — resident memory is
//! O(distinct `(spec, seed)` keys) until the process exits. Experiment
//! binaries are short-lived grids where that is the working set anyway;
//! long-lived processes (services, benchmark harnesses) should call
//! [`clear`] between work items they don't want to share graphs across.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use stg_model::CanonicalGraph;

type Slot = Arc<OnceLock<Arc<CanonicalGraph>>>;

static CACHE: OnceLock<Mutex<HashMap<(String, u64), Slot>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Hit/miss counters of the workload graph cache. Per-sweep deltas are
/// reported in `stg_experiments::engine::Sweep::cache`; the process-wide
/// totals are available through [`stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Instantiations served from the cache.
    pub hits: u64,
    /// Instantiations that had to build the graph.
    pub misses: u64,
}

impl CacheStats {
    /// Records one instantiation outcome.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Total instantiations observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

fn map() -> &'static Mutex<HashMap<(String, u64), Slot>> {
    CACHE.get_or_init(Default::default)
}

/// Returns the cached graph for `(spec, seed)`, building it with `build`
/// on the first request. The second component is `true` when the cache
/// already held the graph. Concurrent first requests for one key block on
/// the builder instead of duplicating work.
pub fn get_or_build(
    spec: &str,
    seed: u64,
    build: impl FnOnce() -> CanonicalGraph,
) -> (Arc<CanonicalGraph>, bool) {
    let slot = {
        let mut m = map().lock().expect("workload cache lock");
        m.entry((spec.to_string(), seed)).or_default().clone()
    };
    let mut built = false;
    let graph = slot
        .get_or_init(|| {
            built = true;
            Arc::new(build())
        })
        .clone();
    if built {
        MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    (graph, !built)
}

/// Process-wide cache counters since start (or the last [`clear`]).
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Number of cached graphs.
pub fn len() -> usize {
    map().lock().expect("workload cache lock").len()
}

/// Drops every cached graph and resets the process-wide counters. Shared
/// `Arc`s held by callers stay alive; only the cache's references go.
pub fn clear() {
    map().lock().expect("workload cache lock").clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_model::Builder;

    fn tiny(n: u64) -> CanonicalGraph {
        let mut b = Builder::new();
        let a = b.compute("a");
        let c = b.compute("b");
        b.edge(a, c, n);
        b.finish().unwrap()
    }

    #[test]
    fn second_request_is_a_hit_and_shares_the_graph() {
        let (a, hit_a) = get_or_build("test-cache-tiny:1", 7, || tiny(8));
        let (b, hit_b) = get_or_build("test-cache-tiny:1", 7, || unreachable!("cached"));
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_seeds_and_specs_build_separately() {
        let (a, _) = get_or_build("test-cache-tiny:2", 0, || tiny(16));
        let (b, hit) = get_or_build("test-cache-tiny:2", 1, || tiny(16));
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &b));
        let (_, hit) = get_or_build("test-cache-tiny:3", 0, || tiny(16));
        assert!(!hit);
    }

    #[test]
    fn exactly_once_under_concurrency() {
        use std::sync::atomic::AtomicUsize;
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    get_or_build("test-cache-tiny:4", 5, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        tiny(4)
                    })
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
    }
}
