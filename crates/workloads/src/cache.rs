//! Process-wide memoization of instantiated workload graphs.
//!
//! Sweep grids evaluate the same `(workload spec, seed)` graph once per
//! scheduler × PE cell; regenerating it each time was the engine's
//! standing hotspot. This cache keys graphs by `(spec, seed)` and hands
//! out shared `Arc`s, guaranteeing **exactly one** construction per key
//! even under concurrent instantiation: the map lock only guards slot
//! lookup, while a per-slot [`OnceLock`] serializes (and deduplicates)
//! the build itself.
//!
//! The cache never evicts on its own — resident memory is
//! O(distinct `(spec, seed)` keys) until the process exits. Experiment
//! binaries are short-lived grids where that is the working set anyway;
//! long-lived processes (services, benchmark harnesses) should call
//! [`clear`] between work items they don't want to share graphs across.
//!
//! Retained graphs are **arena-compacted** before they are published:
//! the builder finishes, the graph's adjacency moves into contiguous CSR
//! slabs ([`Dag::compact`](stg_graph::Dag::compact)), and every cache hit
//! hands out an `Arc` of that compact arena — zero per-hit allocation
//! (the spec is looked up by `&str`, never re-boxed) and better traversal
//! locality for the scheduler's level/partition passes. Compaction never
//! changes ids, adjacency order, or any scheduling output; the
//! cache-coherence proptest pins fingerprint equality against freshly
//! built graphs across every registered family.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use stg_model::CanonicalGraph;

type Slot = Arc<OnceLock<Arc<CanonicalGraph>>>;

/// Keyed `spec → seed → slot`: two levels so the hot path can look a
/// spec up by `&str` (via the `Borrow<str>` impl on `String` keys)
/// without allocating a key tuple per call.
static CACHE: OnceLock<Mutex<HashMap<String, HashMap<u64, Slot>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Hit/miss counters of the workload graph cache. Per-sweep deltas are
/// reported in `stg_experiments::engine::Sweep::cache`; the process-wide
/// totals are available through [`stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Instantiations served from the cache.
    pub hits: u64,
    /// Instantiations that had to build the graph.
    pub misses: u64,
}

impl CacheStats {
    /// Records one instantiation outcome.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Total instantiations observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

fn map() -> &'static Mutex<HashMap<String, HashMap<u64, Slot>>> {
    CACHE.get_or_init(Default::default)
}

/// Returns the cached graph for `(spec, seed)`, building it with `build`
/// on the first request. The second component is `true` when the cache
/// already held the graph. Concurrent first requests for one key block on
/// the builder instead of duplicating work.
///
/// Hits allocate nothing: the slot lookup borrows `spec` as `&str` and
/// the returned graph is an `Arc` clone of the compacted arena built on
/// the first request. Only a miss pays the `String` key insertion and
/// the build + [`compact`](stg_graph::Dag::compact) cost.
pub fn get_or_build(
    spec: &str,
    seed: u64,
    build: impl FnOnce() -> CanonicalGraph,
) -> (Arc<CanonicalGraph>, bool) {
    let slot = {
        let mut m = map().lock().expect("workload cache lock");
        match m.get(spec).and_then(|seeds| seeds.get(&seed)) {
            Some(slot) => Arc::clone(slot),
            None => {
                let slot: Slot = Slot::default();
                m.entry(spec.to_string())
                    .or_default()
                    .insert(seed, Arc::clone(&slot));
                slot
            }
        }
    };
    let mut built = false;
    let graph = slot
        .get_or_init(|| {
            built = true;
            let mut g = build();
            // Compact once, before publication: every hit shares the
            // CSR-slab arena.
            g.dag_mut().compact();
            Arc::new(g)
        })
        .clone();
    if built {
        MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    (graph, !built)
}

/// Process-wide cache counters since start (or the last [`clear`]).
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Number of cached graphs.
pub fn len() -> usize {
    map()
        .lock()
        .expect("workload cache lock")
        .values()
        .map(HashMap::len)
        .sum()
}

/// Drops every cached graph and resets the process-wide counters. Shared
/// `Arc`s held by callers stay alive; only the cache's references go.
pub fn clear() {
    map().lock().expect("workload cache lock").clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_model::Builder;

    fn tiny(n: u64) -> CanonicalGraph {
        let mut b = Builder::new();
        let a = b.compute("a");
        let c = b.compute("b");
        b.edge(a, c, n);
        b.finish().unwrap()
    }

    #[test]
    fn second_request_is_a_hit_and_shares_the_graph() {
        let (a, hit_a) = get_or_build("test-cache-tiny:1", 7, || tiny(8));
        let (b, hit_b) = get_or_build("test-cache-tiny:1", 7, || unreachable!("cached"));
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_seeds_and_specs_build_separately() {
        let (a, _) = get_or_build("test-cache-tiny:2", 0, || tiny(16));
        let (b, hit) = get_or_build("test-cache-tiny:2", 1, || tiny(16));
        assert!(!hit);
        assert!(!Arc::ptr_eq(&a, &b));
        let (_, hit) = get_or_build("test-cache-tiny:3", 0, || tiny(16));
        assert!(!hit);
    }

    #[test]
    fn cached_graphs_are_arena_compacted_and_structurally_intact() {
        let fresh = tiny(32);
        let (cached, hit) = get_or_build("test-cache-tiny:compact", 3, || tiny(32));
        assert!(!hit);
        assert!(cached.dag().is_compact(), "cache compacts before publish");
        assert!(!fresh.dag().is_compact(), "fresh builds stay uncompacted");
        assert_eq!(cached.fingerprint(), fresh.fingerprint());
        assert!(cached.structurally_equal(&fresh));
        // Hits hand out the same compact arena.
        let (again, hit) = get_or_build("test-cache-tiny:compact", 3, || unreachable!());
        assert!(hit);
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn exactly_once_under_concurrency() {
        use std::sync::atomic::AtomicUsize;
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    get_or_build("test-cache-tiny:4", 5, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        tiny(4)
                    })
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
    }
}
