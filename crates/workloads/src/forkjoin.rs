//! Fork–join pipeline task graphs.
//!
//! `stages` sequential stages, each a fork task scattering to `width`
//! parallel workers gathered by a join task; the join chains into the
//! next stage's fork. The alternation between 1-wide and `width`-wide
//! layers is the classic stress test for spatial-block partitioners:
//! blocks larger than `width + 2` span a synchronization point, smaller
//! ones serialize the scatter.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stg_graph::{Dag, NodeId};
use stg_model::CanonicalGraph;

use crate::{assign_volumes, VolumeConfig, WorkloadFamily};

/// A `width`-wide, `stages`-deep fork–join pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ForkJoin {
    /// Parallel workers per stage (≥ 1).
    pub width: usize,
    /// Sequential fork–join stages (≥ 1).
    pub stages: usize,
}

impl ForkJoin {
    /// The default preset, `forkjoin:8x32`.
    pub const DEFAULT: ForkJoin = ForkJoin {
        width: 8,
        stages: 32,
    };

    /// Builds the bare task DAG.
    pub fn build_dag(&self) -> Dag<String, ()> {
        assert!(self.width >= 1 && self.stages >= 1);
        let mut g = Dag::new();
        let mut prev_join: Option<NodeId> = None;
        for s in 0..self.stages {
            let fork = g.add_node(format!("fork{s}"));
            if let Some(j) = prev_join {
                g.add_edge(j, fork, ());
            }
            let join = g.add_node(format!("join{s}"));
            for k in 0..self.width {
                let w = g.add_node(format!("w{s}_{k}"));
                g.add_edge(fork, w, ());
                g.add_edge(w, join, ());
            }
            prev_join = Some(join);
        }
        g
    }
}

impl WorkloadFamily for ForkJoin {
    fn family(&self) -> &'static str {
        "forkjoin"
    }

    fn spec(&self) -> String {
        format!("forkjoin:{}x{}", self.width, self.stages)
    }

    fn task_count(&self) -> usize {
        self.stages * (self.width + 2)
    }

    fn build(&self, seed: u64) -> CanonicalGraph {
        let dag = self.build_dag();
        let mut rng = StdRng::seed_from_u64(seed);
        assign_volumes(&dag, &mut rng, &VolumeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_graph::is_acyclic;

    #[test]
    fn stage_structure() {
        let fj = ForkJoin {
            width: 3,
            stages: 4,
        };
        let dag = fj.build_dag();
        assert_eq!(dag.node_count(), fj.task_count());
        assert_eq!(dag.node_count(), 4 * 5);
        // Per stage: 2*width scatter/gather edges; stages-1 chain edges.
        assert_eq!(dag.edge_count(), 4 * 6 + 3);
        assert!(is_acyclic(&dag));
        assert_eq!(dag.sources().count(), 1);
        assert_eq!(dag.sinks().count(), 1);
    }

    #[test]
    fn generated_graphs_are_canonical() {
        let g = ForkJoin::DEFAULT.build(11);
        g.validate().unwrap();
        assert_eq!(g.compute_count(), 32 * 10);
    }
}
