//! The [`WorkloadFamily`] abstraction: every workload — the paper's four
//! synthetic topologies, the fixed ML graphs, and any new generator — is a
//! named family that renders a canonical spec string, declares its task
//! count, and instantiates seeded canonical graphs through the shared
//! memoization cache ([`crate::cache`]).
//!
//! This mirrors the `stg_core::Scheduler` / `SchedulerKind` split: the
//! trait is the abstraction the engine talks to, [`crate::WorkloadKind`]
//! is the registry of everything a `--workload` spec string can name.

use std::sync::Arc;

use stg_model::CanonicalGraph;

use crate::cache;

/// A family of task-graph workloads, identified by a spec string.
///
/// Implementations are immutable and thread-safe so one instance can
/// instantiate graphs for many sweep cells concurrently. The number of
/// tasks (and for seed-insensitive families the whole graph) must be a
/// pure function of the spec; only edge volumes — and, for families like
/// [`crate::Spmv`], the sparsity pattern — may vary with the seed.
pub trait WorkloadFamily: Send + Sync {
    /// The lowercase family keyword used in spec strings and `--workload`
    /// filters ("chain", "stencil2d", "resnet50", ...).
    fn family(&self) -> &'static str;

    /// The canonical spec string (`chain:8`, `stencil2d:16x16`, ...).
    /// Round-trips through `WorkloadKind::from_str`.
    fn spec(&self) -> String;

    /// The identifier used in reports and emitted CSV/JSON rows. Defaults
    /// to the spec; fixed graphs use their display name ("Resnet-50").
    fn label(&self) -> String {
        self.spec()
    }

    /// The number of compute tasks per generated graph. Constant across
    /// seeds (the cache-coherence and round-trip property tests rely on
    /// it).
    fn task_count(&self) -> usize;

    /// Builds one graph for `seed`, bypassing the cache. Prefer
    /// [`WorkloadFamily::instantiate`] unless a fresh copy is required.
    fn build(&self, seed: u64) -> CanonicalGraph;

    /// False for fixed graphs whose structure and volumes ignore the seed
    /// (they are cached under a single entry and built once per process).
    fn seeded(&self) -> bool {
        true
    }

    /// Returns the graph for `seed`, shared through the process-wide
    /// memoization cache: equal `(spec, seed)` keys build exactly once
    /// and every later request receives the same `Arc`.
    fn instantiate(&self, seed: u64) -> Arc<CanonicalGraph> {
        self.instantiate_traced(seed).0
    }

    /// [`WorkloadFamily::instantiate`] plus whether the cache already
    /// held the graph (`true` = hit). The sweep engine aggregates these
    /// into per-sweep cache statistics.
    fn instantiate_traced(&self, seed: u64) -> (Arc<CanonicalGraph>, bool) {
        let seed = if self.seeded() { seed } else { 0 };
        cache::get_or_build(&self.spec(), seed, || self.build(seed))
    }
}
