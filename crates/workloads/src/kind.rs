//! The workload registry: everything a `--workload` spec string can name.
//!
//! [`WorkloadKind`] is to [`WorkloadFamily`] what `SchedulerKind` is to
//! `Scheduler`: a closed, parseable registry of presets behind the open
//! trait. Every registered workload — the paper's four synthetic
//! topologies, the four extension families, and the fixed ML graphs —
//! round-trips through `Display`/`FromStr`, so sweep grids, CLI filters,
//! and property tests all speak one spec language (`chain:8`,
//! `stencil2d:16x16`, `spmv:1024:0.01`, `attention:seq4096`,
//! `forkjoin:8x32`, `resnet50`, ...).

use std::str::FromStr;
use std::sync::Arc;

use stg_model::CanonicalGraph;

use crate::{generate, WorkloadFamily};
use crate::{Attention, FixedWorkload, ForkJoin, MlWorkload, Spmv, Stencil2d, Topology};

impl WorkloadFamily for Topology {
    fn family(&self) -> &'static str {
        Topology::family(self)
    }

    fn spec(&self) -> String {
        self.to_string()
    }

    fn task_count(&self) -> usize {
        Topology::task_count(self)
    }

    fn build(&self, seed: u64) -> CanonicalGraph {
        generate(*self, seed)
    }
}

/// A registered workload: any graph source the sweep engine can name,
/// parse, and instantiate. `Fixed` is the escape hatch for unregistered
/// graphs and is the only variant without a spec syntax.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadKind {
    /// One of the paper's synthetic topologies (`chain`, `fft`, `gauss`,
    /// `chol`).
    Synthetic(Topology),
    /// 2-D wavefront stencil (`stencil2d:16x16`).
    Stencil2d(Stencil2d),
    /// Sparse triangular solve (`spmv:1024:0.01`).
    Spmv(Spmv),
    /// Blocked long-sequence self-attention (`attention:seq4096`).
    Attention(Attention),
    /// Fork–join pipeline (`forkjoin:8x32`).
    ForkJoin(ForkJoin),
    /// A fixed machine-learning graph (`resnet50`, `transformer`), built
    /// lazily once per process.
    Ml(MlWorkload),
    /// An arbitrary fixed graph under a display name (not parseable).
    Fixed(FixedWorkload),
}

impl WorkloadKind {
    /// Every registered preset at its default size, in display order —
    /// what `sweep --list-workloads` prints and the round-trip property
    /// tests cover.
    pub fn registered() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::Synthetic(Topology::Chain { tasks: 8 }),
            WorkloadKind::Synthetic(Topology::Fft { points: 32 }),
            WorkloadKind::Synthetic(Topology::GaussianElimination { m: 16 }),
            WorkloadKind::Synthetic(Topology::Cholesky { tiles: 8 }),
            WorkloadKind::Stencil2d(Stencil2d::DEFAULT),
            WorkloadKind::Spmv(Spmv::DEFAULT),
            WorkloadKind::Attention(Attention::DEFAULT),
            WorkloadKind::ForkJoin(ForkJoin::DEFAULT),
            WorkloadKind::Ml(MlWorkload::Resnet50),
            WorkloadKind::Ml(MlWorkload::TransformerEncoder),
        ]
    }

    /// Wraps a fixed graph under a display name (the escape hatch for
    /// graphs outside the registry).
    pub fn fixed(name: impl Into<String>, graph: CanonicalGraph) -> WorkloadKind {
        WorkloadKind::Fixed(FixedWorkload {
            name: name.into(),
            graph: Arc::new(graph),
        })
    }

    /// The synthetic paper topology, if this workload is one (the figure
    /// binaries group their output by it).
    pub fn topology(&self) -> Option<Topology> {
        match self {
            WorkloadKind::Synthetic(t) => Some(*t),
            _ => None,
        }
    }

    /// The PE counts a grid sweeps this workload over when the caller
    /// does not choose its own (paper sweeps for the paper workloads,
    /// Table 2 sweeps for the ML graphs).
    pub fn default_pes(&self) -> Vec<usize> {
        match self {
            WorkloadKind::Synthetic(Topology::Chain { .. }) => vec![2, 4, 6, 8],
            WorkloadKind::Synthetic(_) => vec![32, 64, 96, 128],
            WorkloadKind::Stencil2d(_) => vec![16, 32, 64],
            WorkloadKind::Spmv(_) => vec![32, 64, 128],
            WorkloadKind::Attention(_) => vec![64, 128, 256],
            WorkloadKind::ForkJoin(_) => vec![8, 16, 32],
            WorkloadKind::Ml(MlWorkload::Resnet50) => vec![512, 1024, 1536, 2048],
            WorkloadKind::Ml(MlWorkload::TransformerEncoder) => vec![256, 512, 768, 1024],
            WorkloadKind::Fixed(_) => Vec::new(),
        }
    }

    fn inner(&self) -> &dyn WorkloadFamily {
        match self {
            WorkloadKind::Synthetic(t) => t,
            WorkloadKind::Stencil2d(s) => s,
            WorkloadKind::Spmv(s) => s,
            WorkloadKind::Attention(a) => a,
            WorkloadKind::ForkJoin(f) => f,
            WorkloadKind::Ml(m) => m,
            WorkloadKind::Fixed(f) => f,
        }
    }
}

impl WorkloadFamily for WorkloadKind {
    fn family(&self) -> &'static str {
        self.inner().family()
    }

    fn spec(&self) -> String {
        self.inner().spec()
    }

    fn label(&self) -> String {
        self.inner().label()
    }

    fn task_count(&self) -> usize {
        self.inner().task_count()
    }

    fn build(&self, seed: u64) -> CanonicalGraph {
        self.inner().build(seed)
    }

    fn seeded(&self) -> bool {
        self.inner().seeded()
    }

    fn instantiate_traced(&self, seed: u64) -> (Arc<CanonicalGraph>, bool) {
        self.inner().instantiate_traced(seed)
    }
}

impl std::fmt::Display for WorkloadKind {
    /// Renders the canonical spec string. Round-trips through `FromStr`
    /// for every variant except `Fixed`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

/// Error parsing a [`WorkloadKind`] spec string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseWorkloadError(String);

impl std::fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid workload spec {:?}; registered families: chain:N, fft:N, gauss:M, \
             chol:T, stencil2d:RxC, spmv:N:DENSITY, attention:seqN, forkjoin:WxS, \
             resnet50, transformer — e.g. \"chain:8\", \"stencil2d:16x16\", \
             \"spmv:1024:0.01\" (sizes optional: \"stencil2d\" picks the default)",
            self.0
        )
    }
}

impl std::error::Error for ParseWorkloadError {}

/// Parses `"RxC"` (or a bare `"N"` meaning `NxN`).
fn parse_grid(s: &str) -> Option<(usize, usize)> {
    match s.split_once('x') {
        Some((r, c)) => Some((r.parse().ok()?, c.parse().ok()?)),
        None => {
            let n = s.parse().ok()?;
            Some((n, n))
        }
    }
}

impl FromStr for WorkloadKind {
    type Err = ParseWorkloadError;

    /// Parses a workload spec, case-insensitive. A bare family keyword
    /// selects the registered default size. The four paper topologies
    /// keep their `Topology` spec syntax and aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseWorkloadError(s.to_string());
        let lower = s.trim().to_ascii_lowercase();
        let (family, size) = match lower.split_once(':') {
            Some((f, sz)) => (f, Some(sz)),
            None => (lower.as_str(), None),
        };
        let kind = match family {
            "chain" | "fft" | "gauss" | "gaussian" | "ge" | "chol" | "cholesky" => {
                WorkloadKind::Synthetic(lower.parse::<Topology>().map_err(|_| err())?)
            }
            "stencil2d" | "stencil" => {
                let (rows, cols) = match size {
                    Some(sz) => parse_grid(sz).ok_or_else(err)?,
                    None => (Stencil2d::DEFAULT.rows, Stencil2d::DEFAULT.cols),
                };
                if rows < 1 || cols < 1 || rows * cols < 2 {
                    return Err(err());
                }
                WorkloadKind::Stencil2d(Stencil2d { rows, cols })
            }
            "spmv" => {
                let (rows, density_ppm) = match size {
                    Some(sz) => {
                        let (rows, density) = match sz.split_once(':') {
                            Some((r, d)) => {
                                let d: f64 = d.parse().map_err(|_| err())?;
                                if !d.is_finite() || !(0.0..=1.0).contains(&d) {
                                    return Err(err());
                                }
                                (r, (d * 1e6).round() as u32)
                            }
                            None => (sz, Spmv::DEFAULT.density_ppm),
                        };
                        (rows.parse().map_err(|_| err())?, density)
                    }
                    None => (Spmv::DEFAULT.rows, Spmv::DEFAULT.density_ppm),
                };
                if rows < 2 {
                    return Err(err());
                }
                WorkloadKind::Spmv(Spmv { rows, density_ppm })
            }
            "attention" | "attn" => {
                let seq = match size {
                    Some(sz) => sz
                        .strip_prefix("seq")
                        .unwrap_or(sz)
                        .parse()
                        .map_err(|_| err())?,
                    None => Attention::DEFAULT.seq,
                };
                if seq < 1 {
                    return Err(err());
                }
                WorkloadKind::Attention(Attention { seq })
            }
            "forkjoin" | "fj" => {
                let (width, stages) = match size {
                    Some(sz) => parse_grid(sz).ok_or_else(err)?,
                    None => (ForkJoin::DEFAULT.width, ForkJoin::DEFAULT.stages),
                };
                if width < 1 || stages < 1 {
                    return Err(err());
                }
                WorkloadKind::ForkJoin(ForkJoin { width, stages })
            }
            "resnet50" | "resnet" => WorkloadKind::Ml(MlWorkload::Resnet50),
            "transformer" | "encoder" => WorkloadKind::Ml(MlWorkload::TransformerEncoder),
            _ => return Err(err()),
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_spec_strings_parse() {
        // The exact spec strings of the workload-API issue.
        assert_eq!(
            "stencil2d:16x16".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Stencil2d(Stencil2d { rows: 16, cols: 16 })
        );
        assert_eq!(
            "spmv:1024:0.01".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Spmv(Spmv {
                rows: 1024,
                density_ppm: 10_000
            })
        );
        assert_eq!(
            "attention:seq4096".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Attention(Attention { seq: 4096 })
        );
        assert_eq!(
            "forkjoin:8x32".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::ForkJoin(ForkJoin {
                width: 8,
                stages: 32
            })
        );
        assert_eq!(
            "chain:8".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Synthetic(Topology::Chain { tasks: 8 })
        );
    }

    #[test]
    fn bare_families_pick_defaults_and_aliases_work() {
        assert_eq!(
            "stencil".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Stencil2d(Stencil2d::DEFAULT)
        );
        assert_eq!(
            "spmv".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Spmv(Spmv::DEFAULT)
        );
        assert_eq!(
            "attention:512".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Attention(Attention { seq: 512 })
        );
        assert_eq!(
            "fj".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::ForkJoin(ForkJoin::DEFAULT)
        );
        assert_eq!(
            "Resnet".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Ml(MlWorkload::Resnet50)
        );
        assert_eq!(
            "encoder".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Ml(MlWorkload::TransformerEncoder)
        );
        assert_eq!(
            "gaussian:4".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Synthetic(Topology::GaussianElimination { m: 4 })
        );
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "",
            "mesh",
            "stencil2d:1x1",
            "stencil2d:0x4",
            "stencil2d:4y4",
            "spmv:1",
            "spmv:64:1.5",
            "spmv:64:-0.1",
            "spmv:64:nan",
            "attention:seq0",
            "forkjoin:0x4",
            "fft:31",
        ] {
            assert!(bad.parse::<WorkloadKind>().is_err(), "{bad}");
        }
    }

    #[test]
    fn registered_specs_round_trip() {
        for kind in WorkloadKind::registered() {
            let spec = kind.to_string();
            assert_eq!(spec.parse::<WorkloadKind>().unwrap(), kind, "{spec}");
        }
    }

    #[test]
    fn density_display_round_trips() {
        for ppm in [1u32, 100, 10_000, 123_456, 1_000_000] {
            let kind = WorkloadKind::Spmv(Spmv {
                rows: 64,
                density_ppm: ppm,
            });
            assert_eq!(kind.to_string().parse::<WorkloadKind>().unwrap(), kind);
        }
    }

    #[test]
    fn synthetic_labels_are_topology_specs() {
        let kind = WorkloadKind::Synthetic(Topology::Chain { tasks: 8 });
        assert_eq!(kind.label(), "chain:8");
        assert_eq!(kind.topology(), Some(Topology::Chain { tasks: 8 }));
        assert_eq!(kind.task_count(), 8);
    }

    #[test]
    fn default_pes_cover_every_registered_kind() {
        for kind in WorkloadKind::registered() {
            assert!(!kind.default_pes().is_empty(), "{kind}");
        }
    }
}
