//! # stg-workloads
//!
//! The workload layer of the evaluation: every task graph a sweep can
//! schedule, behind one registry.
//!
//! - The paper's synthetic topologies (Section 7.1): Chain, FFT, Gaussian
//!   elimination, and tiled Cholesky with randomly sampled canonical
//!   volumes (seeded, deterministic) — [`Topology`].
//! - Extension families: 2-D wavefront stencils ([`Stencil2d`]), sparse
//!   triangular solves ([`Spmv`]), blocked long-sequence attention
//!   ([`Attention`]), and fork–join pipelines ([`ForkJoin`]).
//! - The fixed ML graphs of Table 2 ([`MlWorkload`]), lowered lazily once
//!   per process.
//!
//! Every workload implements [`WorkloadFamily`] and is registered in
//! [`WorkloadKind`], whose `Display`/`FromStr` spec strings (`chain:8`,
//! `stencil2d:16x16`, `spmv:1024:0.01`, ...) drive the sweep engine, the
//! `--workload` CLI filter, and the property tests. Instantiated graphs
//! are memoized process-wide in [`cache`] keyed by `(spec, seed)`, so a
//! sweep grid builds each graph exactly once across all scheduler and PE
//! cells.

#![warn(missing_docs)]

pub mod attention;
pub mod cache;
pub mod family;
pub mod fixed;
pub mod forkjoin;
pub mod kind;
pub mod spmv;
pub mod stencil;
pub mod topology;
pub mod volumes;

pub use attention::Attention;
pub use cache::CacheStats;
pub use family::WorkloadFamily;
pub use fixed::{FixedWorkload, MlWorkload};
pub use forkjoin::ForkJoin;
pub use kind::{ParseWorkloadError, WorkloadKind};
pub use spmv::Spmv;
pub use stencil::Stencil2d;
pub use topology::{ParseTopologyError, Topology};
pub use volumes::{assign_volumes, VolumeConfig};

use rand::rngs::StdRng;
use rand::SeedableRng;
use stg_model::CanonicalGraph;

/// Generates one random canonical task graph for a topology (uncached;
/// use [`WorkloadFamily::instantiate`] for the memoized path).
pub fn generate(topology: Topology, seed: u64) -> CanonicalGraph {
    generate_with(topology, seed, &VolumeConfig::default())
}

/// Generates one random canonical task graph with custom volume settings.
pub fn generate_with(topology: Topology, seed: u64, config: &VolumeConfig) -> CanonicalGraph {
    let t = topology.build();
    let mut rng = StdRng::seed_from_u64(seed);
    assign_volumes(&t, &mut rng, config)
}

/// Generates `count` graphs with seeds `base_seed..base_seed+count` (the
/// 100-graph samples of Figures 10–13).
pub fn sample(topology: Topology, count: u64, base_seed: u64) -> Vec<CanonicalGraph> {
    (0..count)
        .map(|i| generate(topology, base_seed + i))
        .collect()
}

/// The four benchmark topologies at the paper's sizes, with the PE counts
/// swept in Figures 10–11.
pub fn paper_suite() -> Vec<(Topology, Vec<usize>)> {
    vec![
        (Topology::Chain { tasks: 8 }, vec![2, 4, 6, 8]),
        (Topology::Fft { points: 32 }, vec![32, 64, 96, 128]),
        (
            Topology::GaussianElimination { m: 16 },
            vec![32, 64, 96, 128],
        ),
        (Topology::Cholesky { tiles: 8 }, vec![32, 64, 96, 128]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_expected_task_counts() {
        for (topo, _) in paper_suite() {
            let g = generate(topo, 0);
            assert_eq!(g.compute_count(), topo.task_count());
            g.validate().unwrap();
        }
    }

    #[test]
    fn sample_is_seed_shifted() {
        let graphs = sample(Topology::Chain { tasks: 8 }, 3, 100);
        assert_eq!(graphs.len(), 3);
        let direct = generate(Topology::Chain { tasks: 8 }, 101);
        let a: Vec<u64> = graphs[1].dag().edges().map(|(_, e)| e.weight).collect();
        let b: Vec<u64> = direct.dag().edges().map(|(_, e)| e.weight).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn cached_instantiation_matches_direct_generation() {
        let topo = Topology::Fft { points: 16 };
        let kind = WorkloadKind::Synthetic(topo);
        let cached = kind.instantiate(55);
        let direct = generate(topo, 55);
        let a: Vec<u64> = cached.dag().edges().map(|(_, e)| e.weight).collect();
        let b: Vec<u64> = direct.dag().edges().map(|(_, e)| e.weight).collect();
        assert_eq!(a, b);
        // And the second request shares the first graph.
        assert!(std::sync::Arc::ptr_eq(&cached, &kind.instantiate(55)));
    }

    #[test]
    fn paper_suite_default_pes_match_registry() {
        for (topo, pes) in paper_suite() {
            assert_eq!(WorkloadKind::Synthetic(topo).default_pes(), pes);
        }
    }
}
