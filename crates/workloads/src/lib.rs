//! # stg-workloads
//!
//! The synthetic task graphs of the paper's evaluation (Section 7.1):
//! Chain, FFT, Gaussian elimination, and tiled Cholesky topologies with
//! randomly sampled canonical volumes (seeded, deterministic).

#![warn(missing_docs)]

pub mod topology;
pub mod volumes;

pub use topology::{ParseTopologyError, Topology};
pub use volumes::{assign_volumes, VolumeConfig};

use rand::rngs::StdRng;
use rand::SeedableRng;
use stg_model::CanonicalGraph;

/// Generates one random canonical task graph for a topology.
pub fn generate(topology: Topology, seed: u64) -> CanonicalGraph {
    generate_with(topology, seed, &VolumeConfig::default())
}

/// Generates one random canonical task graph with custom volume settings.
pub fn generate_with(topology: Topology, seed: u64, config: &VolumeConfig) -> CanonicalGraph {
    let t = topology.build();
    let mut rng = StdRng::seed_from_u64(seed);
    assign_volumes(&t, &mut rng, config)
}

/// Generates `count` graphs with seeds `base_seed..base_seed+count` (the
/// 100-graph samples of Figures 10–13).
pub fn sample(topology: Topology, count: u64, base_seed: u64) -> Vec<CanonicalGraph> {
    (0..count)
        .map(|i| generate(topology, base_seed + i))
        .collect()
}

/// The four benchmark topologies at the paper's sizes, with the PE counts
/// swept in Figures 10–11.
pub fn paper_suite() -> Vec<(Topology, Vec<usize>)> {
    vec![
        (Topology::Chain { tasks: 8 }, vec![2, 4, 6, 8]),
        (Topology::Fft { points: 32 }, vec![32, 64, 96, 128]),
        (
            Topology::GaussianElimination { m: 16 },
            vec![32, 64, 96, 128],
        ),
        (Topology::Cholesky { tiles: 8 }, vec![32, 64, 96, 128]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_expected_task_counts() {
        for (topo, _) in paper_suite() {
            let g = generate(topo, 0);
            assert_eq!(g.compute_count(), topo.task_count());
            g.validate().unwrap();
        }
    }

    #[test]
    fn sample_is_seed_shifted() {
        let graphs = sample(Topology::Chain { tasks: 8 }, 3, 100);
        assert_eq!(graphs.len(), 3);
        let direct = generate(Topology::Chain { tasks: 8 }, 101);
        let a: Vec<u64> = graphs[1].dag().edges().map(|(_, e)| e.weight).collect();
        let b: Vec<u64> = direct.dag().edges().map(|(_, e)| e.weight).collect();
        assert_eq!(a, b);
    }
}
