//! Long-sequence blocked self-attention task graphs.
//!
//! A flash-attention-style blocked schedule over a sequence of length
//! `seq`, tiled into blocks of [`Attention::BLOCK`] tokens: one
//! projection entry task fans out to per-(query, key) block score tasks
//! `qk`, each query block reduces its scores through a softmax task,
//! fans back out over the value blocks (`av`), accumulates into an
//! output task, and a final merge task joins all query blocks. The
//! quadratic `qk`/`av` layers model why long sequences are the paper's
//! motivating "new workload family": task counts grow as
//! `O((seq / BLOCK)²)` while the depth stays constant.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stg_graph::Dag;
use stg_model::CanonicalGraph;

use crate::{assign_volumes, VolumeConfig, WorkloadFamily};

/// Blocked self-attention over a `seq`-token sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Attention {
    /// Sequence length in tokens (≥ 1; tiled into `BLOCK`-token blocks).
    pub seq: usize,
}

impl Attention {
    /// Tokens per tile; `seq 4096` ⇒ a 32 × 32 block grid.
    pub const BLOCK: usize = 128;

    /// The long-sequence default preset, `attention:seq4096`.
    pub const DEFAULT: Attention = Attention { seq: 4096 };

    /// Number of sequence blocks.
    pub fn blocks(&self) -> usize {
        self.seq.div_ceil(Self::BLOCK).max(1)
    }

    /// Builds the bare task DAG.
    pub fn build_dag(&self) -> Dag<String, ()> {
        let b = self.blocks();
        let mut g = Dag::new();
        let proj = g.add_node("proj".to_string());
        let merge = g.add_node("merge".to_string());
        for i in 0..b {
            let smx = g.add_node(format!("smx{i}"));
            for j in 0..b {
                let qk = g.add_node(format!("qk{i}_{j}"));
                g.add_edge(proj, qk, ());
                g.add_edge(qk, smx, ());
            }
            let out = g.add_node(format!("out{i}"));
            for j in 0..b {
                let av = g.add_node(format!("av{i}_{j}"));
                g.add_edge(smx, av, ());
                g.add_edge(av, out, ());
            }
            g.add_edge(out, merge, ());
        }
        g
    }
}

impl WorkloadFamily for Attention {
    fn family(&self) -> &'static str {
        "attention"
    }

    fn spec(&self) -> String {
        format!("attention:seq{}", self.seq)
    }

    fn task_count(&self) -> usize {
        let b = self.blocks();
        // proj + merge + per query block: b qk, softmax, b av, out.
        2 + b * (2 * b + 2)
    }

    fn build(&self, seed: u64) -> CanonicalGraph {
        let dag = self.build_dag();
        let mut rng = StdRng::seed_from_u64(seed);
        assign_volumes(&dag, &mut rng, &VolumeConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_graph::is_acyclic;

    #[test]
    fn block_grid_structure() {
        let a = Attention { seq: 512 }; // 4 blocks
        let dag = a.build_dag();
        assert_eq!(a.blocks(), 4);
        assert_eq!(dag.node_count(), a.task_count());
        assert_eq!(dag.node_count(), 2 + 4 * 10);
        assert!(is_acyclic(&dag));
        assert_eq!(dag.sources().count(), 1);
        assert_eq!(dag.sinks().count(), 1);
    }

    #[test]
    fn short_sequences_round_up_to_one_block() {
        let a = Attention { seq: 1 };
        assert_eq!(a.blocks(), 1);
        let g = a.build(0);
        g.validate().unwrap();
        assert_eq!(g.compute_count(), a.task_count());
    }

    #[test]
    fn default_matches_quadratic_count() {
        let a = Attention::DEFAULT;
        assert_eq!(a.blocks(), 32);
        assert_eq!(a.task_count(), 2 + 32 * 66);
    }
}
