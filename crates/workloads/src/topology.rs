//! Task graph topologies of the paper's synthetic evaluation (Section 7.1).
//!
//! Each generator returns a bare task DAG (tasks only — the synthetic
//! graphs have no explicit source/sink/buffer nodes; entry tasks produce
//! data and exit tasks consume it). Task counts match the paper:
//!
//! - Chain(N): `N` tasks;
//! - FFT(N points): `2N−1` recursive-call tasks plus `N·log2 N` butterfly
//!   tasks (223 for N = 32);
//! - Gaussian elimination(M): `(M² + M − 2)/2` tasks (135 for M = 16);
//! - tiled Cholesky(T): `T³/6 + T²/2 + T/3` tasks (120 for T = 8).

use stg_graph::{Dag, NodeId};

/// A synthetic topology from the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Linear chain of `n` tasks.
    Chain {
        /// Number of tasks.
        tasks: usize,
    },
    /// One-dimensional radix-2 FFT task graph over `points` inputs
    /// (a power of two): a binary recursive-call tree followed by
    /// `log2(points)` butterfly layers of `points` tasks each.
    Fft {
        /// Number of FFT points (must be a power of two ≥ 2).
        points: usize,
    },
    /// Gaussian elimination on an `m × m` matrix: per step a pivot task and
    /// one update task per remaining column.
    GaussianElimination {
        /// Matrix dimension.
        m: usize,
    },
    /// Tiled Cholesky factorization over a `t × t` tile grid
    /// (POTRF/TRSM/SYRK/GEMM tasks with the standard dependency pattern).
    Cholesky {
        /// Tile grid dimension.
        tiles: usize,
    },
}

impl Topology {
    /// The number of tasks this topology generates.
    pub fn task_count(&self) -> usize {
        match *self {
            Topology::Chain { tasks } => tasks,
            Topology::Fft { points } => {
                let m = points.trailing_zeros() as usize;
                2 * points - 1 + points * m
            }
            Topology::GaussianElimination { m } => (m * m + m - 2) / 2,
            Topology::Cholesky { tiles } => {
                let t = tiles;
                t + t * (t - 1) / 2 + t * (t - 1) / 2 + t * (t - 1) * (t - 2) / 6
            }
        }
    }

    /// A short name used in reports ("Chain", "FFT", ...).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Chain { .. } => "Chain",
            Topology::Fft { .. } => "FFT",
            Topology::GaussianElimination { .. } => "Gaussian Elimination",
            Topology::Cholesky { .. } => "Cholesky Factorization",
        }
    }

    /// The lowercase family keyword used in `Display`/`FromStr` specs
    /// and `--workload` filters ("chain", "fft", "gauss", "chol").
    pub fn family(&self) -> &'static str {
        match self {
            Topology::Chain { .. } => "chain",
            Topology::Fft { .. } => "fft",
            Topology::GaussianElimination { .. } => "gauss",
            Topology::Cholesky { .. } => "chol",
        }
    }

    /// The size parameter (tasks, points, matrix dimension, or tiles).
    pub fn size(&self) -> usize {
        match *self {
            Topology::Chain { tasks } => tasks,
            Topology::Fft { points } => points,
            Topology::GaussianElimination { m } => m,
            Topology::Cholesky { tiles } => tiles,
        }
    }

    /// Builds the bare task DAG (node payload: task label).
    pub fn build(&self) -> Dag<String, ()> {
        match *self {
            Topology::Chain { tasks } => chain(tasks),
            Topology::Fft { points } => fft(points),
            Topology::GaussianElimination { m } => gaussian(m),
            Topology::Cholesky { tiles } => cholesky(tiles),
        }
    }
}

impl std::fmt::Display for Topology {
    /// Renders the canonical spec string, `family:size` (e.g. `chain:8`,
    /// `fft:32`, `gauss:16`, `chol:8`). Round-trips through `FromStr`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.family(), self.size())
    }
}

/// Error parsing a [`Topology`] spec string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTopologyError(String);

impl std::fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid topology spec {:?}; expected family[:size] with family one of \
             chain, fft, gauss(ian), chol(esky) — e.g. \"chain:8\", \"fft:32\", \"gauss\"",
            self.0
        )
    }
}

impl std::error::Error for ParseTopologyError {}

impl std::str::FromStr for Topology {
    type Err = ParseTopologyError;

    /// Parses a `family[:size]` spec, case-insensitive. A bare family
    /// keyword selects the paper's evaluation size (`chain` → 8 tasks,
    /// `fft` → 32 points, `gauss` → m = 16, `chol` → 8 tiles). Family
    /// aliases: `gaussian`/`ge` for `gauss`, `cholesky` for `chol`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTopologyError(s.to_string());
        let lower = s.trim().to_ascii_lowercase();
        let (family, size) = match lower.split_once(':') {
            Some((f, sz)) => (f, Some(sz.parse::<usize>().map_err(|_| err())?)),
            None => (lower.as_str(), None),
        };
        let topo = match family {
            "chain" => Topology::Chain {
                tasks: size.unwrap_or(8),
            },
            "fft" => Topology::Fft {
                points: size.unwrap_or(32),
            },
            "gauss" | "gaussian" | "ge" => Topology::GaussianElimination {
                m: size.unwrap_or(16),
            },
            "chol" | "cholesky" => Topology::Cholesky {
                tiles: size.unwrap_or(8),
            },
            _ => return Err(err()),
        };
        // Reject sizes the generators would panic on.
        let valid = match topo {
            Topology::Chain { tasks } => tasks >= 1,
            Topology::Fft { points } => points >= 2 && points.is_power_of_two(),
            Topology::GaussianElimination { m } => m >= 2,
            Topology::Cholesky { tiles } => tiles >= 1,
        };
        if valid {
            Ok(topo)
        } else {
            Err(err())
        }
    }
}

fn chain(n: usize) -> Dag<String, ()> {
    assert!(n >= 1);
    let mut g = Dag::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("t{i}"))).collect();
    for w in nodes.windows(2) {
        g.add_edge(w[0], w[1], ());
    }
    g
}

fn fft(points: usize) -> Dag<String, ()> {
    assert!(
        points >= 2 && points.is_power_of_two(),
        "FFT needs a power of two ≥ 2"
    );
    let m = points.trailing_zeros() as usize;
    let mut g = Dag::new();
    // Recursive-call tree: depth 0 (root) .. depth m (leaves), data flowing
    // root -> leaves as the input is recursively split.
    let mut tree: Vec<Vec<NodeId>> = Vec::with_capacity(m + 1);
    for d in 0..=m {
        let row: Vec<NodeId> = (0..1usize << d)
            .map(|i| g.add_node(format!("rec{d}_{i}")))
            .collect();
        if d > 0 {
            for (i, &node) in row.iter().enumerate() {
                g.add_edge(tree[d - 1][i / 2], node, ());
            }
        }
        tree.push(row);
    }
    // Butterfly layers: layer l task i combines elements i and i ^ 2^l of
    // the previous layer (leaves for l = 0, with partner i ^ 1).
    let mut prev: Vec<NodeId> = tree[m].clone();
    for l in 0..m {
        let span = 1usize << l;
        let row: Vec<NodeId> = (0..points)
            .map(|i| g.add_node(format!("bfly{l}_{i}")))
            .collect();
        for (i, &node) in row.iter().enumerate() {
            let partner = if l == 0 { i ^ 1 } else { i ^ span };
            g.add_edge(prev[i], node, ());
            g.add_edge(prev[partner], node, ());
        }
        prev = row;
    }
    g
}

#[allow(clippy::needless_range_loop)] // update[j] is written as well as read
fn gaussian(m: usize) -> Dag<String, ()> {
    assert!(m >= 2);
    let mut g = Dag::new();
    // update[j] holds the last task that touched column j.
    let mut update: Vec<Option<NodeId>> = vec![None; m + 1];
    for k in 1..m {
        let pivot = g.add_node(format!("piv{k}"));
        if let Some(prev) = update[k] {
            g.add_edge(prev, pivot, ());
        }
        for j in k + 1..=m {
            let u = g.add_node(format!("upd{k}_{j}"));
            g.add_edge(pivot, u, ());
            if let Some(prev) = update[j] {
                g.add_edge(prev, u, ());
            }
            update[j] = Some(u);
        }
    }
    g
}

fn cholesky(t: usize) -> Dag<String, ()> {
    assert!(t >= 1);
    let mut g = Dag::new();
    // Accumulation frontier per tile: last task writing tile (i, j).
    let mut diag: Vec<Option<NodeId>> = vec![None; t]; // tile (i,i)
    let mut lower: Vec<Vec<Option<NodeId>>> = vec![vec![None; t]; t]; // (j,i), j>i
    let mut trsm_of: Vec<Vec<Option<NodeId>>> = vec![vec![None; t]; t];
    for k in 0..t {
        let potrf = g.add_node(format!("potrf{k}"));
        if let Some(prev) = diag[k] {
            g.add_edge(prev, potrf, ());
        }
        for i in k + 1..t {
            let trsm = g.add_node(format!("trsm{k}_{i}"));
            g.add_edge(potrf, trsm, ());
            if let Some(prev) = lower[i][k] {
                g.add_edge(prev, trsm, ());
            }
            trsm_of[k][i] = Some(trsm);
        }
        for i in k + 1..t {
            let syrk = g.add_node(format!("syrk{k}_{i}"));
            g.add_edge(trsm_of[k][i].expect("trsm exists"), syrk, ());
            if let Some(prev) = diag[i] {
                g.add_edge(prev, syrk, ());
            }
            diag[i] = Some(syrk);
            for j in i + 1..t {
                let gemm = g.add_node(format!("gemm{k}_{i}_{j}"));
                g.add_edge(trsm_of[k][i].expect("trsm"), gemm, ());
                g.add_edge(trsm_of[k][j].expect("trsm"), gemm, ());
                if let Some(prev) = lower[j][i] {
                    g.add_edge(prev, gemm, ());
                }
                lower[j][i] = Some(gemm);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_graph::is_acyclic;

    #[test]
    fn paper_task_counts() {
        // The exact counts reported in Figure 10's captions.
        assert_eq!(Topology::Chain { tasks: 8 }.task_count(), 8);
        assert_eq!(Topology::Fft { points: 32 }.task_count(), 223);
        assert_eq!(Topology::GaussianElimination { m: 16 }.task_count(), 135);
        assert_eq!(Topology::Cholesky { tiles: 8 }.task_count(), 120);
    }

    #[test]
    fn built_graphs_match_declared_counts() {
        for topo in [
            Topology::Chain { tasks: 8 },
            Topology::Fft { points: 32 },
            Topology::GaussianElimination { m: 16 },
            Topology::Cholesky { tiles: 8 },
            Topology::Fft { points: 8 },
            Topology::GaussianElimination { m: 4 },
            Topology::Cholesky { tiles: 4 },
        ] {
            let g = topo.build();
            assert_eq!(g.node_count(), topo.task_count(), "{topo:?}");
            assert!(is_acyclic(&g), "{topo:?}");
        }
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for topo in [
            Topology::Chain { tasks: 12 },
            Topology::Fft { points: 64 },
            Topology::GaussianElimination { m: 5 },
            Topology::Cholesky { tiles: 3 },
        ] {
            let spec = topo.to_string();
            assert_eq!(spec.parse::<Topology>().unwrap(), topo, "{spec}");
        }
    }

    #[test]
    fn from_str_accepts_aliases_and_defaults() {
        assert_eq!(
            "chain".parse::<Topology>().unwrap(),
            Topology::Chain { tasks: 8 }
        );
        assert_eq!(
            "FFT".parse::<Topology>().unwrap(),
            Topology::Fft { points: 32 }
        );
        assert_eq!(
            "gaussian:4".parse::<Topology>().unwrap(),
            Topology::GaussianElimination { m: 4 }
        );
        assert_eq!(
            "cholesky:8".parse::<Topology>().unwrap(),
            Topology::Cholesky { tiles: 8 }
        );
    }

    #[test]
    fn from_str_rejects_bad_specs() {
        for bad in ["", "mesh", "fft:31", "fft:x", "chain:0", "gauss:1"] {
            assert!(bad.parse::<Topology>().is_err(), "{bad}");
        }
    }

    #[test]
    fn fft_butterflies_have_two_inputs() {
        let g = Topology::Fft { points: 8 }.build();
        for (id, name) in g.nodes() {
            if name.starts_with("bfly") {
                assert_eq!(g.in_degree(id), 2, "{name}");
            }
        }
    }

    #[test]
    fn chain_has_linear_structure() {
        let g = Topology::Chain { tasks: 5 }.build();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn gaussian_structure() {
        // M=4: 3 pivots + updates (3+2+1) = 9 tasks.
        let g = Topology::GaussianElimination { m: 4 }.build();
        assert_eq!(g.node_count(), 9);
        // One entry (first pivot) and one exit (last update).
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn cholesky_structure() {
        // T=2: potrf0, trsm0_1, syrk0_1, potrf1 = 4 tasks.
        let g = Topology::Cholesky { tiles: 2 }.build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.sinks().count(), 1);
    }
}
