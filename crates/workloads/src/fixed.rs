//! Fixed-graph workloads: the evaluated ML models and user-supplied
//! graphs.
//!
//! ML graphs are expensive to lower, so [`MlWorkload`] is only a *recipe*
//! — the graph is built lazily on first instantiation and cached once per
//! process (seeds are ignored), instead of eagerly per `SweepSpec` as the
//! old engine-local `Workload::Fixed` required.

use std::sync::Arc;

use stg_ml::{encoder_layer, resnet50, ResNetConfig, TransformerConfig};
use stg_model::CanonicalGraph;

use crate::WorkloadFamily;

/// The paper's Table 2 machine-learning inference workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MlWorkload {
    /// ResNet-50 inference at batch size 1 (224×224 input).
    Resnet50,
    /// One base transformer encoder layer (128-token sequence).
    TransformerEncoder,
}

impl WorkloadFamily for MlWorkload {
    fn family(&self) -> &'static str {
        match self {
            MlWorkload::Resnet50 => "resnet50",
            MlWorkload::TransformerEncoder => "transformer",
        }
    }

    fn spec(&self) -> String {
        self.family().to_string()
    }

    fn label(&self) -> String {
        match self {
            MlWorkload::Resnet50 => "Resnet-50".to_string(),
            MlWorkload::TransformerEncoder => "Transformer encoder".to_string(),
        }
    }

    /// Forces the (cached, once-per-process) lowering of the model.
    fn task_count(&self) -> usize {
        self.instantiate(0).compute_count()
    }

    fn build(&self, _seed: u64) -> CanonicalGraph {
        match self {
            MlWorkload::Resnet50 => resnet50(&ResNetConfig::default()),
            MlWorkload::TransformerEncoder => encoder_layer(&TransformerConfig::default()),
        }
    }

    fn seeded(&self) -> bool {
        false
    }
}

/// An arbitrary fixed graph under a display name — the escape hatch for
/// sweeping graphs that are not in the registry (custom lowerings, test
/// fixtures). Not parseable from a spec string.
#[derive(Clone, Debug)]
pub struct FixedWorkload {
    /// Display name used in reports and emitted rows.
    pub name: String,
    /// The shared graph.
    pub graph: Arc<CanonicalGraph>,
}

impl PartialEq for FixedWorkload {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && Arc::ptr_eq(&self.graph, &other.graph)
    }
}

impl WorkloadFamily for FixedWorkload {
    fn family(&self) -> &'static str {
        "fixed"
    }

    fn spec(&self) -> String {
        format!("fixed:{}", self.name)
    }

    fn label(&self) -> String {
        self.name.clone()
    }

    fn task_count(&self) -> usize {
        self.graph.compute_count()
    }

    fn build(&self, _seed: u64) -> CanonicalGraph {
        (*self.graph).clone()
    }

    fn seeded(&self) -> bool {
        false
    }

    fn instantiate_traced(&self, _seed: u64) -> (Arc<CanonicalGraph>, bool) {
        // Already shared; the memo cache would only add a second owner.
        (Arc::clone(&self.graph), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml_specs_and_labels() {
        assert_eq!(MlWorkload::Resnet50.spec(), "resnet50");
        assert_eq!(MlWorkload::Resnet50.label(), "Resnet-50");
        assert_eq!(MlWorkload::TransformerEncoder.spec(), "transformer");
        assert_eq!(
            MlWorkload::TransformerEncoder.label(),
            "Transformer encoder"
        );
        assert!(!MlWorkload::Resnet50.seeded());
    }

    #[test]
    fn fixed_workload_shares_without_caching() {
        use stg_model::Builder;
        let mut b = Builder::new();
        let x = b.compute("x");
        let y = b.compute("y");
        b.edge(x, y, 8);
        let w = FixedWorkload {
            name: "tiny".into(),
            graph: Arc::new(b.finish().unwrap()),
        };
        let (a, hit_a) = w.instantiate_traced(0);
        let (b2, hit_b) = w.instantiate_traced(99);
        assert!(hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b2));
        assert_eq!(w.task_count(), 2);
    }
}
