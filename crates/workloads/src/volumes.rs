//! Random canonical volume assignment.
//!
//! "For a given topology, we consider different DAGs by randomly generating
//! edge weights: therefore, each task graph will have different data volumes
//! and types of canonical nodes." (Section 7.1)
//!
//! Canonicity couples volumes: every edge `(u,v)` forces `O(u) = I(v)`, and
//! a node's input (output) edges all share one volume. We therefore build
//! *must-equal classes* with a union-find over per-node `I`/`O` variables,
//! then assign each class a volume by walking the class DAG with random
//! production rates — which makes nodes randomly element-wise,
//! down-samplers, or up-samplers while every sampled graph stays canonical
//! by construction.

use rand::rngs::StdRng;
use rand::Rng;
use stg_graph::{topological_order, Dag, NodeId, UnionFind};
use stg_model::{CanonicalGraph, CanonicalNode, NodeKind};

/// Volume randomization parameters.
#[derive(Clone, Copy, Debug)]
pub struct VolumeConfig {
    /// Entry volumes are `2^k` with `k` uniform in this inclusive range.
    pub base_log2: (u32, u32),
    /// Volumes are clamped to `[min_volume, max_volume]`.
    pub min_volume: u64,
    /// Upper clamp.
    pub max_volume: u64,
}

impl Default for VolumeConfig {
    fn default() -> Self {
        VolumeConfig {
            base_log2: (6, 10), // 64 .. 1024 elements
            min_volume: 1,
            max_volume: 4096,
        }
    }
}

/// Production-rate choices and their sampling weights: mostly element-wise,
/// with a mix of mild reductions and expansions (numerator, denominator,
/// weight). Extreme rates couple the whole-graph steady state so strongly
/// that temporally multiplexed schedules can beat the fully co-scheduled
/// streaming depth; the paper's distributions are mild, and so are these.
const RATES: &[(u64, u64, u32)] = &[(1, 2, 2), (1, 1, 6), (2, 1, 2)];

/// Converts a bare task DAG into a canonical task graph with random volumes.
pub fn assign_volumes(
    topology: &Dag<String, ()>,
    rng: &mut StdRng,
    config: &VolumeConfig,
) -> CanonicalGraph {
    let n = topology.node_count();
    // Variables: I(v) at 2v, O(v) at 2v+1.
    let mut uf = UnionFind::new(2 * n);
    for (_, e) in topology.edges() {
        uf.union(2 * e.src.0 + 1, 2 * e.dst.0);
    }

    // Class DAG edges: class(I(v)) -> class(O(v)) for nodes with both sides.
    // We walk nodes in topological order so a class's volume is decided
    // before its descendants (classes are intervals of the task order).
    let order = topological_order(topology).expect("task DAGs are acyclic");
    let mut class_volume: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let total_weight: u32 = RATES.iter().map(|&(_, _, w)| w).sum();
    let sample_rate = |rng: &mut StdRng| -> (u64, u64) {
        let mut pick = rng.gen_range(0..total_weight);
        for &(p, q, w) in RATES {
            if pick < w {
                return (p, q);
            }
            pick -= w;
        }
        unreachable!()
    };

    for &v in &order {
        let has_in = topology.in_degree(v) > 0;
        let has_out = topology.out_degree(v) > 0;
        let in_class = uf.find(2 * v.0);
        let out_class = uf.find(2 * v.0 + 1);
        if has_in && !class_volume.contains_key(&in_class) {
            // Defensive: predecessors assign this; an isolated entry side.
            let k = rng.gen_range(config.base_log2.0..=config.base_log2.1);
            class_volume.insert(in_class, 1u64 << k);
        }
        if !has_out {
            continue;
        }
        if class_volume.contains_key(&out_class) {
            continue;
        }
        let vol = if has_in {
            let iv = class_volume[&in_class];
            let (p, q) = sample_rate(rng);
            (iv * p / q).clamp(config.min_volume, config.max_volume)
        } else {
            let k = rng.gen_range(config.base_log2.0..=config.base_log2.1);
            1u64 << k
        };
        class_volume.insert(out_class, vol.max(1));
    }

    // Materialize the canonical graph.
    let mut out = CanonicalGraph::new();
    for (_, name) in topology.nodes() {
        out.dag_mut()
            .add_node(CanonicalNode::new(NodeKind::Compute, name.clone()));
    }
    for (_, e) in topology.edges() {
        let class = uf.find(2 * e.src.0 + 1);
        let vol = class_volume[&class];
        out.dag_mut()
            .add_edge(NodeId(e.src.0), NodeId(e.dst.0), vol);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use rand::SeedableRng;

    #[test]
    fn sampled_graphs_are_canonical() {
        for topo in [
            Topology::Chain { tasks: 8 },
            Topology::Fft { points: 16 },
            Topology::GaussianElimination { m: 8 },
            Topology::Cholesky { tiles: 5 },
        ] {
            let t = topo.build();
            for seed in 0..20 {
                let mut rng = StdRng::seed_from_u64(seed);
                let g = assign_volumes(&t, &mut rng, &VolumeConfig::default());
                g.validate()
                    .unwrap_or_else(|e| panic!("{topo:?} seed {seed}: {e:?}"));
            }
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let t = Topology::Fft { points: 16 }.build();
        let g1 = assign_volumes(&t, &mut StdRng::seed_from_u64(7), &VolumeConfig::default());
        let g2 = assign_volumes(&t, &mut StdRng::seed_from_u64(7), &VolumeConfig::default());
        let v1: Vec<u64> = g1.dag().edges().map(|(_, e)| e.weight).collect();
        let v2: Vec<u64> = g2.dag().edges().map(|(_, e)| e.weight).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn different_seeds_differ() {
        let t = Topology::GaussianElimination { m: 8 }.build();
        let volumes = |seed: u64| -> Vec<u64> {
            let g = assign_volumes(
                &t,
                &mut StdRng::seed_from_u64(seed),
                &VolumeConfig::default(),
            );
            g.dag().edges().map(|(_, e)| e.weight).collect()
        };
        assert_ne!(volumes(1), volumes(2), "seeds should vary the volumes");
    }

    #[test]
    fn rates_produce_mixed_node_classes() {
        use stg_model::NodeClass;
        let t = Topology::Fft { points: 32 }.build();
        let mut classes = std::collections::HashSet::new();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = assign_volumes(&t, &mut rng, &VolumeConfig::default());
            for v in g.compute_nodes() {
                classes.insert(g.class(v));
            }
        }
        assert!(classes.contains(&NodeClass::ElementWise));
        assert!(
            classes.contains(&NodeClass::Downsampler) || classes.contains(&NodeClass::Upsampler),
            "rate sampling should produce non-elementwise nodes"
        );
    }

    #[test]
    fn volumes_respect_clamps() {
        let t = Topology::Chain { tasks: 32 }.build();
        let cfg = VolumeConfig {
            base_log2: (8, 8),
            min_volume: 4,
            max_volume: 64,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let g = assign_volumes(&t, &mut rng, &cfg);
        // Base is 256, above the clamp — but only derived (non-entry)
        // volumes are clamped, so interior edges stay within bounds after
        // one hop.
        for (i, (_, e)) in g.dag().edges().enumerate() {
            if i > 0 {
                assert!(e.weight <= 64, "edge {i} volume {}", e.weight);
                assert!(e.weight >= 1);
            }
        }
    }
}
