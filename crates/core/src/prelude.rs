//! Convenience re-exports of the most commonly used types across the
//! workspace.

pub use crate::pipeline::{
    MultiplexScheduler, NonStreamingPlan, NonStreamingScheduler, Partitioner, StreamingPlan,
    StreamingScheduler,
};
pub use crate::repair::{RepairReuse, Repaired};
pub use crate::scheduler::{Plan, PlanDetail, Scheduler, SchedulerKind};
pub use stg_analysis::{
    generalized_levels, non_streaming_depth, schedule, schedule_with, streaming_depth,
    streaming_depth_bound, work_depth, BlockStartRule, Partition, Schedule, ScheduleError,
    StreamingIntervals, WorkDepth,
};
pub use stg_buffer::{buffer_sizes, BufferPlan, ChannelKind, SizingPolicy};
pub use stg_des::{
    relative_error, simulate, simulate_kind, simulate_with, simulate_with_kind, BatchedSim,
    ReferenceSim, SimConfig, SimFailure, SimKind, SimResult, Simulator,
};
pub use stg_graph::{Dag, EdgeId, NodeId, Ratio};
pub use stg_model::{Builder, CanonicalGraph, CanonicalNode, NodeClass, NodeKind, Violation};
pub use stg_sched::{
    assign_pes, downsampler_partition, elementwise_partition, non_streaming_schedule,
    spatial_block_partition, streaming_schedule, temporal_multiplex_partition, ListSchedule,
    Metrics, MultiplexLayout, Placement, SbVariant, StreamingResult,
};
