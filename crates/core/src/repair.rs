//! Incremental plan repair: reuse a cached [`Plan`] across small spec
//! deltas instead of rescheduling from scratch.
//!
//! Every scheduler in the workspace is deterministic and name-blind, so
//! repair can be *exact by construction*: a tier is only taken when the
//! reused artifacts are provably the ones a from-scratch run would
//! compute, which makes the repaired plan byte-identical to
//! `kind.build(pes).schedule(new_g)` — not merely approximately equal.
//! The tiers, from cheapest to most expensive:
//!
//! 1. **Full** — the delta left the scheduling inputs unchanged (e.g. a
//!    seed change that produced a structurally identical graph, or pure
//!    renames): clone the cached plan.
//! 2. **Partition** — same graph, new PE count, and the preset's
//!    partitioner maps the new PE count to the *same* partition: the
//!    `ST/FO/LO` schedule and FIFO sizes do not depend on the PE count
//!    given the partition, so both are reused and only the metrics
//!    (whose utilization divides by `P`) are recomputed.
//! 3. **Scratch** — nothing is provably reusable: reschedule.

use stg_analysis::{non_streaming_depth, streaming_depth, Partition, ScheduleError};
use stg_model::CanonicalGraph;
use stg_sched::{
    compute_metrics, downsampler_partition, elementwise_partition, spatial_block_partition,
    upsampler_partition, SbVariant, StreamingResult,
};

use crate::pipeline::StreamingPlan;
use crate::scheduler::{Plan, PlanDetail, SchedulerKind};

/// How much of the cached plan a [`Plan::repair`] call reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairReuse {
    /// The delta left the plan's inputs unchanged: the cached plan was
    /// cloned outright.
    Full,
    /// The graph was unchanged and the new PE count produced the same
    /// partition: schedule and buffers were reused, metrics recomputed.
    Partition,
    /// Nothing could be provably reused: rescheduled from scratch.
    Scratch,
}

/// A repaired plan plus the reuse level achieved.
#[derive(Clone, Debug)]
pub struct Repaired {
    /// The plan for the new spec — byte-identical to scheduling from
    /// scratch.
    pub plan: Plan,
    /// How much of the cached plan was reused.
    pub reuse: RepairReuse,
}

impl Plan {
    /// Repairs `self` — a cached plan previously produced by `kind` for
    /// `old` — into a plan for `(new_g, pes)`, reusing as much of the
    /// cached plan as is provably exact.
    ///
    /// The output is always byte-identical to
    /// `kind.build(pes).schedule(new_g)`; the reuse tier only changes how
    /// much work producing it took. Passing a `kind` that did not produce
    /// `self` is safe: the name check fails and repair degrades to
    /// scratch scheduling.
    pub fn repair(
        &self,
        kind: SchedulerKind,
        old: &CanonicalGraph,
        new_g: &CanonicalGraph,
        pes: usize,
    ) -> Result<Repaired, ScheduleError> {
        let same_inputs = kind.to_string() == self.scheduler() && new_g.structurally_equal(old);
        if same_inputs && pes == self.pes() {
            return Ok(Repaired {
                plan: self.clone(),
                reuse: RepairReuse::Full,
            });
        }
        if same_inputs {
            if let (Some(partition), PlanDetail::Streaming(cached)) =
                (kind_partition(kind, new_g, pes), self.detail())
            {
                if partition == cached.result.partition {
                    return Ok(Repaired {
                        plan: rescale(self.scheduler(), cached, partition, new_g, pes)?,
                        reuse: RepairReuse::Partition,
                    });
                }
            }
        }
        kind.build(pes).schedule(new_g).map(|plan| Repaired {
            plan,
            reuse: RepairReuse::Scratch,
        })
    }
}

/// Rebuilds a plan around a cached schedule + buffers for a new PE
/// count. Exact because `schedule_with(g, partition, rule)` does not take
/// the PE count: given an identical partition the schedule (and hence
/// the buffer sizing, which reads only graph + schedule) is identical,
/// and the metrics are recomputed through the same
/// [`compute_metrics`] call the scratch path runs.
fn rescale(
    name: &'static str,
    cached: &StreamingPlan,
    partition: Partition,
    g: &CanonicalGraph,
    pes: usize,
) -> Result<Plan, ScheduleError> {
    let schedule = cached.result.schedule.clone();
    let metrics = compute_metrics(
        g,
        schedule.makespan,
        schedule.utilization(g, pes),
        partition.len(),
        streaming_depth(g)?,
        non_streaming_depth(g)?,
    );
    Ok(Plan::from_streaming(
        name,
        StreamingPlan {
            pes,
            result: StreamingResult {
                partition,
                schedule,
                metrics,
            },
            buffers: cached.buffers.clone(),
        },
    ))
}

/// The partition `kind.build(pes)` would compute, for the presets whose
/// schedule and buffers depend on the PE count *only* through the
/// partition. `None` for the buffered baseline (its list schedule packs
/// onto PEs directly) and the multiplex preset (its metrics carry a
/// transition cost outside the partition).
fn kind_partition(kind: SchedulerKind, g: &CanonicalGraph, pes: usize) -> Option<Partition> {
    match kind {
        SchedulerKind::StreamingLts
        | SchedulerKind::StreamingLtsDep
        | SchedulerKind::StreamingLtsCyclesOnly => {
            Some(spatial_block_partition(g, pes, SbVariant::Lts))
        }
        SchedulerKind::StreamingRlx | SchedulerKind::StreamingRlxDep => {
            Some(spatial_block_partition(g, pes, SbVariant::Rlx))
        }
        SchedulerKind::Elementwise => Some(elementwise_partition(g, pes)),
        SchedulerKind::Downsampler => Some(downsampler_partition(g, pes)),
        SchedulerKind::Upsampler => Some(upsampler_partition(g, pes)),
        SchedulerKind::NonStreaming | SchedulerKind::Multiplex(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_model::Builder;

    fn chain_named(n: usize, k: u64, prefix: &str) -> CanonicalGraph {
        let mut b = Builder::new();
        let t: Vec<_> = (0..n).map(|i| b.compute(format!("{prefix}{i}"))).collect();
        b.chain(&t, k);
        b.finish().unwrap()
    }

    /// Byte-identity proxy: `Debug` renders every field, including the
    /// exact bits of the f64 metrics.
    fn render(p: &Plan) -> String {
        format!("{p:?}")
    }

    #[test]
    fn rename_only_delta_is_a_full_reuse() {
        let kind = SchedulerKind::StreamingRlx;
        let old = chain_named(6, 64, "t");
        let new_g = chain_named(6, 64, "renamed");
        let cached = kind.build(3).schedule(&old).unwrap();
        let repaired = cached.repair(kind, &old, &new_g, 3).unwrap();
        assert_eq!(repaired.reuse, RepairReuse::Full);
        let scratch = kind.build(3).schedule(&new_g).unwrap();
        assert_eq!(render(&repaired.plan), render(&scratch));
    }

    #[test]
    fn pe_delta_with_stable_partition_reuses_the_schedule() {
        // A 4-task chain fits one block at p=4 and p=5 alike, so the
        // partition survives the PE delta and only metrics change.
        let kind = SchedulerKind::StreamingLts;
        let g = chain_named(4, 128, "t");
        let cached = kind.build(4).schedule(&g).unwrap();
        let repaired = cached.repair(kind, &g, &g, 5).unwrap();
        assert_eq!(repaired.reuse, RepairReuse::Partition);
        let scratch = kind.build(5).schedule(&g).unwrap();
        assert_eq!(render(&repaired.plan), render(&scratch));
        assert_eq!(repaired.plan.pes(), 5);
    }

    #[test]
    fn graph_delta_falls_back_to_scratch() {
        let kind = SchedulerKind::StreamingLts;
        let old = chain_named(6, 64, "t");
        let new_g = chain_named(6, 96, "t");
        let cached = kind.build(3).schedule(&old).unwrap();
        let repaired = cached.repair(kind, &old, &new_g, 3).unwrap();
        assert_eq!(repaired.reuse, RepairReuse::Scratch);
        let scratch = kind.build(3).schedule(&new_g).unwrap();
        assert_eq!(render(&repaired.plan), render(&scratch));
    }

    #[test]
    fn kind_mismatch_never_reuses_the_wrong_plan() {
        let old = chain_named(6, 64, "t");
        let cached = SchedulerKind::StreamingLts.build(3).schedule(&old).unwrap();
        let repaired = cached
            .repair(SchedulerKind::NonStreaming, &old, &old, 3)
            .unwrap();
        assert_eq!(repaired.reuse, RepairReuse::Scratch);
        assert_eq!(repaired.plan.scheduler(), "NSTR-SCH");
    }

    #[test]
    fn multiplex_plans_repair_too() {
        let mut b = Builder::new();
        let t: Vec<_> = (0..4).map(|i| b.compute(format!("a{i}"))).collect();
        b.chain(&t, 64);
        let u: Vec<_> = (0..4).map(|i| b.compute(format!("b{i}"))).collect();
        b.chain(&u, 32);
        let old = b.finish().unwrap();
        let kind = SchedulerKind::Multiplex(2);
        let cached = kind.build(4).schedule(&old).unwrap();
        // Unchanged inputs: full reuse, byte-identical.
        let repaired = cached.repair(kind, &old, &old, 4).unwrap();
        assert_eq!(repaired.reuse, RepairReuse::Full);
        let scratch = kind.build(4).schedule(&old).unwrap();
        assert_eq!(render(&repaired.plan), render(&scratch));
        // PE delta: multiplex always reschedules (its blocks are cut by
        // the PE count and its metrics carry the transition cost).
        let repaired = cached.repair(kind, &old, &old, 3).unwrap();
        assert_eq!(repaired.reuse, RepairReuse::Scratch);
        let scratch = kind.build(3).schedule(&old).unwrap();
        assert_eq!(render(&repaired.plan), render(&scratch));
    }
}
