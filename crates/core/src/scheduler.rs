//! The unified scheduler abstraction: every scheduling pipeline in the
//! workspace — the paper's STR-SCH variants, the appendix partitioners,
//! and the buffered NSTR-SCH baseline — implements one [`Scheduler`]
//! trait producing one [`Plan`] type. The experiment binaries, the sweep
//! engine (`stg_experiments::engine`), the benchmarks, and the examples
//! all talk to schedulers exclusively through this boundary, so new
//! schedulers plug into every figure, bench, and service frontend by
//! implementing a single method.

use std::str::FromStr;

use stg_analysis::{Partition, Schedule, ScheduleError};
use stg_buffer::BufferPlan;
use stg_des::{SimKind, SimResult};
use stg_model::CanonicalGraph;
use stg_sched::{assign_pes, Metrics, Placement, SbVariant};

use crate::pipeline::{
    MultiplexScheduler, NonStreamingPlan, NonStreamingScheduler, Partitioner, StreamingPlan,
    StreamingScheduler,
};

/// Interns a dynamically formatted preset name so parameterised presets
/// (like `multiplex:<slots>`) can hand out `&'static str` names exactly
/// like the fixed presets. The pool is bounded by the number of distinct
/// slot counts a process ever names, so the leak is finite and
/// deliberate.
pub(crate) fn intern_preset(name: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("preset intern pool");
    match pool.get(name.as_str()) {
        Some(&interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(name.into_boxed_str());
            pool.insert(leaked);
            leaked
        }
    }
}

/// A scheduling algorithm for canonical task graphs on a fixed machine
/// size. Implementations are immutable and thread-safe so one instance
/// can evaluate many scenarios concurrently.
pub trait Scheduler: Send + Sync {
    /// A short display name ("STR-SCH-1", "NSTR-SCH", ...), used in
    /// reports and emitted CSV/JSON.
    fn name(&self) -> &'static str;

    /// The machine size (number of processing elements) plans target.
    fn pes(&self) -> usize;

    /// Computes a complete execution plan for `g`.
    fn schedule(&self, g: &CanonicalGraph) -> Result<Plan, ScheduleError>;
}

/// The scheduler-specific parts of a [`Plan`].
#[derive(Clone, Debug)]
pub enum PlanDetail {
    /// A pipelined spatial-block plan (partition, `ST/FO/LO` schedule,
    /// sized FIFO channels). Boxed: streaming plans are much larger than
    /// the baseline's.
    Streaming(Box<StreamingPlan>),
    /// A buffered list-scheduling plan (all communication through global
    /// memory).
    NonStreaming(NonStreamingPlan),
}

/// A complete execution plan produced by any [`Scheduler`]: makespan and
/// metrics, a task-to-PE assignment, an optional FIFO buffer plan, and a
/// validation hook running the element-level discrete event simulator.
#[derive(Clone, Debug)]
pub struct Plan {
    scheduler: &'static str,
    pes: usize,
    detail: PlanDetail,
}

impl Plan {
    /// Wraps a streaming plan produced by `scheduler`.
    pub fn from_streaming(scheduler: &'static str, plan: StreamingPlan) -> Plan {
        Plan {
            scheduler,
            pes: plan.pes,
            detail: PlanDetail::Streaming(Box::new(plan)),
        }
    }

    /// Wraps a non-streaming (buffered baseline) plan.
    pub fn from_non_streaming(scheduler: &'static str, pes: usize, plan: NonStreamingPlan) -> Plan {
        Plan {
            scheduler,
            pes,
            detail: PlanDetail::NonStreaming(plan),
        }
    }

    /// The name of the scheduler that produced this plan.
    pub fn scheduler(&self) -> &'static str {
        self.scheduler
    }

    /// The machine size the plan was computed for.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Schedule length.
    pub fn makespan(&self) -> u64 {
        self.metrics().makespan
    }

    /// Evaluation metrics (speedup, SSLR/SLR, utilization, block count).
    pub fn metrics(&self) -> &Metrics {
        match &self.detail {
            PlanDetail::Streaming(p) => p.metrics(),
            PlanDetail::NonStreaming(p) => &p.metrics,
        }
    }

    /// The FIFO buffer plan, if the schedule streams data between tasks
    /// (`None` for the buffered baseline — it has no FIFO channels).
    pub fn buffers(&self) -> Option<&BufferPlan> {
        match &self.detail {
            PlanDetail::Streaming(p) => Some(&p.buffers),
            PlanDetail::NonStreaming(_) => None,
        }
    }

    /// The spatial-block partition, for streaming plans.
    pub fn partition(&self) -> Option<&Partition> {
        match &self.detail {
            PlanDetail::Streaming(p) => Some(&p.result.partition),
            PlanDetail::NonStreaming(_) => None,
        }
    }

    /// The `ST/FO/LO` block schedule, for streaming plans.
    pub fn block_schedule(&self) -> Option<&Schedule> {
        match &self.detail {
            PlanDetail::Streaming(p) => Some(p.schedule()),
            PlanDetail::NonStreaming(_) => None,
        }
    }

    /// The task-to-PE assignment of the plan.
    pub fn placement(&self, g: &CanonicalGraph) -> Placement {
        match &self.detail {
            PlanDetail::Streaming(p) => assign_pes(g, &p.result.partition),
            PlanDetail::NonStreaming(p) => {
                let pe_of = g
                    .node_ids()
                    .map(|v| g.node(v).is_schedulable().then(|| p.schedule.pe[v.index()]))
                    .collect();
                Placement {
                    pe_of,
                    pes_used: vec![p.schedule.pes_used],
                }
            }
        }
    }

    /// Validates the plan by element-level discrete event simulation with
    /// the reference simulator (see [`Self::validate_with`]).
    pub fn validate(&self, g: &CanonicalGraph) -> SimResult {
        self.validate_with(g, SimKind::Reference)
    }

    /// Validates the plan by element-level discrete event simulation with
    /// the chosen simulator ([`SimKind::Batched`] is bit-identical to the
    /// reference and far cheaper on large graphs).
    ///
    /// Streaming plans run the Appendix B simulator with the computed
    /// FIFO capacities. Buffered baseline plans cannot deadlock by
    /// construction (every transfer goes through unbounded global
    /// memory), so their analytic schedule is its own witness: the
    /// returned result reports completion at the analytic times, busy
    /// spans equal to the scheduled task spans, and no FIFO traffic.
    pub fn validate_with(&self, g: &CanonicalGraph, sim: SimKind) -> SimResult {
        match &self.detail {
            PlanDetail::Streaming(p) => p.validate_with(g, sim),
            PlanDetail::NonStreaming(p) => {
                let fo: Vec<Option<u64>> = g
                    .node_ids()
                    .map(|v| {
                        g.node(v)
                            .is_schedulable()
                            .then(|| p.schedule.finish[v.index()])
                    })
                    .collect();
                let busy: Vec<Option<u64>> = g
                    .node_ids()
                    .map(|v| {
                        g.node(v)
                            .is_schedulable()
                            .then(|| p.schedule.finish[v.index()] - p.schedule.start[v.index()])
                    })
                    .collect();
                SimResult {
                    makespan: p.schedule.makespan,
                    lo: fo.clone(),
                    fo,
                    busy,
                    beats: 0,
                    fifo_peak: vec![0; g.dag().edge_count()],
                    failure: None,
                }
            }
        }
    }

    /// The scheduler-specific plan details.
    pub fn detail(&self) -> &PlanDetail {
        &self.detail
    }
}

impl Scheduler for StreamingScheduler {
    fn name(&self) -> &'static str {
        self.preset_name()
    }

    fn pes(&self) -> usize {
        StreamingScheduler::pes(self)
    }

    fn schedule(&self, g: &CanonicalGraph) -> Result<Plan, ScheduleError> {
        self.run(g).map(|p| Plan::from_streaming(self.name(), p))
    }
}

impl Scheduler for MultiplexScheduler {
    fn name(&self) -> &'static str {
        intern_preset(format!("MUX-SCH:{}", self.slots()))
    }

    fn pes(&self) -> usize {
        MultiplexScheduler::pes(self)
    }

    fn schedule(&self, g: &CanonicalGraph) -> Result<Plan, ScheduleError> {
        self.run(g).map(|p| Plan::from_streaming(self.name(), p))
    }
}

impl Scheduler for NonStreamingScheduler {
    fn name(&self) -> &'static str {
        "NSTR-SCH"
    }

    fn pes(&self) -> usize {
        NonStreamingScheduler::pes(self)
    }

    fn schedule(&self, g: &CanonicalGraph) -> Result<Plan, ScheduleError> {
        Ok(Plan::from_non_streaming(
            self.name(),
            Scheduler::pes(self),
            self.run(g),
        ))
    }
}

/// The registry of named scheduler presets: everything the sweep engine,
/// the `--scheduler` CLI filter, and the property tests can instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// STR-SCH-1: Algorithm 1 SB-LTS, barrier block starts, converging
    /// buffer sizing.
    StreamingLts,
    /// STR-SCH-2: Algorithm 1 SB-RLX.
    StreamingRlx,
    /// STR-SCH-1*: SB-LTS with dependency-based block starts (the literal
    /// Section 5.1 recurrences).
    StreamingLtsDep,
    /// STR-SCH-2*: SB-RLX with dependency-based block starts.
    StreamingRlxDep,
    /// STR-SCH-1-CYC: SB-LTS with the literal cycles-only buffer sizing.
    StreamingLtsCyclesOnly,
    /// ELW-SCH: Theorem A.1's level-order partitioner.
    Elementwise,
    /// DSW-SCH: Algorithm 2's work-ordered down-sampler partitioner.
    Downsampler,
    /// USW-SCH: the symmetric up-sampler partitioner.
    Upsampler,
    /// NSTR-SCH: the buffered critical-path list-scheduling baseline.
    NonStreaming,
    /// MUX-SCH:`<slots>`: temporal multiplexing of several tenants'
    /// graphs (precedence-DAG components) into the given number of time
    /// slots, with a per-transition reconfiguration cost.
    Multiplex(usize),
}

impl SchedulerKind {
    /// Every registered preset, in display order (the multiplex preset is
    /// represented by its two-slot default; other slot counts parse via
    /// `multiplex:<slots>`).
    pub const ALL: [SchedulerKind; 10] = [
        SchedulerKind::StreamingLts,
        SchedulerKind::StreamingRlx,
        SchedulerKind::StreamingLtsDep,
        SchedulerKind::StreamingRlxDep,
        SchedulerKind::StreamingLtsCyclesOnly,
        SchedulerKind::Elementwise,
        SchedulerKind::Downsampler,
        SchedulerKind::Upsampler,
        SchedulerKind::NonStreaming,
        SchedulerKind::Multiplex(2),
    ];

    /// Instantiates the preset for a machine with `pes` processing
    /// elements.
    pub fn build(&self, pes: usize) -> Box<dyn Scheduler> {
        use stg_analysis::BlockStartRule;
        use stg_buffer::SizingPolicy;
        match self {
            SchedulerKind::StreamingLts => Box::new(StreamingScheduler::new(pes)),
            SchedulerKind::StreamingRlx => {
                Box::new(StreamingScheduler::new(pes).variant(SbVariant::Rlx))
            }
            SchedulerKind::StreamingLtsDep => {
                Box::new(StreamingScheduler::new(pes).block_rule(BlockStartRule::Dependency))
            }
            SchedulerKind::StreamingRlxDep => Box::new(
                StreamingScheduler::new(pes)
                    .variant(SbVariant::Rlx)
                    .block_rule(BlockStartRule::Dependency),
            ),
            SchedulerKind::StreamingLtsCyclesOnly => {
                Box::new(StreamingScheduler::new(pes).sizing(SizingPolicy::CyclesOnly))
            }
            SchedulerKind::Elementwise => {
                Box::new(StreamingScheduler::new(pes).partitioner(Partitioner::Elementwise))
            }
            SchedulerKind::Downsampler => {
                Box::new(StreamingScheduler::new(pes).partitioner(Partitioner::Downsampler))
            }
            SchedulerKind::Upsampler => {
                Box::new(StreamingScheduler::new(pes).partitioner(Partitioner::Upsampler))
            }
            SchedulerKind::NonStreaming => Box::new(NonStreamingScheduler::new(pes)),
            SchedulerKind::Multiplex(slots) => Box::new(MultiplexScheduler::new(pes, *slots)),
        }
    }

    /// True for presets that pipeline data over FIFO channels (everything
    /// except the buffered baseline).
    pub fn is_streaming(&self) -> bool {
        !matches!(self, SchedulerKind::NonStreaming)
    }

    /// The canonical short command-line alias (`--scheduler sb-lts`).
    /// Parses back through `FromStr`, like the display name.
    pub fn alias(&self) -> &'static str {
        match self {
            SchedulerKind::StreamingLts => "sb-lts",
            SchedulerKind::StreamingRlx => "sb-rlx",
            SchedulerKind::StreamingLtsDep => "sb-lts-dep",
            SchedulerKind::StreamingRlxDep => "sb-rlx-dep",
            SchedulerKind::StreamingLtsCyclesOnly => "sb-lts-cyc",
            SchedulerKind::Elementwise => "elementwise",
            SchedulerKind::Downsampler => "downsampler",
            SchedulerKind::Upsampler => "upsampler",
            SchedulerKind::NonStreaming => "nonstreaming",
            SchedulerKind::Multiplex(slots) => intern_preset(format!("multiplex:{slots}")),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SchedulerKind::StreamingLts => "STR-SCH-1",
            SchedulerKind::StreamingRlx => "STR-SCH-2",
            SchedulerKind::StreamingLtsDep => "STR-SCH-1*",
            SchedulerKind::StreamingRlxDep => "STR-SCH-2*",
            SchedulerKind::StreamingLtsCyclesOnly => "STR-SCH-1-CYC",
            SchedulerKind::Elementwise => "ELW-SCH",
            SchedulerKind::Downsampler => "DSW-SCH",
            SchedulerKind::Upsampler => "USW-SCH",
            SchedulerKind::NonStreaming => "NSTR-SCH",
            SchedulerKind::Multiplex(slots) => return write!(f, "MUX-SCH:{slots}"),
        };
        f.write_str(name)
    }
}

/// Error parsing a [`SchedulerKind`] from a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSchedulerError(String);

impl std::fmt::Display for ParseSchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheduler {:?}; known: sb-lts, sb-rlx, sb-lts-dep, sb-rlx-dep, \
             sb-lts-cyc, elementwise, downsampler, upsampler, nonstreaming, \
             multiplex:<slots>",
            self.0
        )
    }
}

impl std::error::Error for ParseSchedulerError {}

impl FromStr for SchedulerKind {
    type Err = ParseSchedulerError;

    /// Parses a preset name, case-insensitive. Accepts the display names
    /// ("STR-SCH-1", "NSTR-SCH", "MUX-SCH:4") and the short aliases used
    /// on the command line ("sb-lts", "rlx", "nstr", "multiplex:4",
    /// "mux:4", ...). Bare "multiplex"/"mux" means two slots.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        if let Some(slots) = ["multiplex:", "mux-sch:", "mux:"]
            .iter()
            .find_map(|prefix| lower.strip_prefix(prefix))
        {
            return match slots.parse::<usize>() {
                Ok(n) if n > 0 => Ok(SchedulerKind::Multiplex(n)),
                _ => Err(ParseSchedulerError(s.to_string())),
            };
        }
        match lower.as_str() {
            "multiplex" | "mux" | "mux-sch" => Ok(SchedulerKind::Multiplex(2)),
            "str-sch-1" | "sb-lts" | "lts" => Ok(SchedulerKind::StreamingLts),
            "str-sch-2" | "sb-rlx" | "rlx" => Ok(SchedulerKind::StreamingRlx),
            "str-sch-1*" | "sb-lts-dep" | "lts-dep" => Ok(SchedulerKind::StreamingLtsDep),
            "str-sch-2*" | "sb-rlx-dep" | "rlx-dep" => Ok(SchedulerKind::StreamingRlxDep),
            "str-sch-1-cyc" | "sb-lts-cyc" | "cycles-only" => {
                Ok(SchedulerKind::StreamingLtsCyclesOnly)
            }
            "elw-sch" | "elementwise" | "elw" => Ok(SchedulerKind::Elementwise),
            "dsw-sch" | "downsampler" | "dsw" => Ok(SchedulerKind::Downsampler),
            "usw-sch" | "upsampler" | "usw" => Ok(SchedulerKind::Upsampler),
            "nstr-sch" | "nonstreaming" | "non-streaming" | "nstr" | "baseline" => {
                Ok(SchedulerKind::NonStreaming)
            }
            _ => Err(ParseSchedulerError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_model::Builder;

    fn chain(n: usize, k: u64) -> CanonicalGraph {
        let mut b = Builder::new();
        let t: Vec<_> = (0..n).map(|i| b.compute(format!("t{i}"))).collect();
        b.chain(&t, k);
        b.finish().unwrap()
    }

    #[test]
    fn every_kind_round_trips_through_from_str() {
        for kind in SchedulerKind::ALL {
            let display = kind.to_string();
            assert_eq!(display.parse::<SchedulerKind>().unwrap(), kind, "{display}");
            assert_eq!(kind.alias().parse::<SchedulerKind>().unwrap(), kind);
        }
        assert!("nope".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn built_scheduler_names_match_kind_display() {
        for kind in SchedulerKind::ALL {
            let sched = kind.build(4);
            assert_eq!(sched.name(), kind.to_string(), "{kind:?}");
            assert_eq!(sched.pes(), 4);
        }
    }

    #[test]
    fn every_kind_schedules_a_chain() {
        let g = chain(6, 64);
        for kind in SchedulerKind::ALL {
            let plan = kind.build(3).schedule(&g).expect("schedulable");
            assert!(plan.makespan() > 0, "{kind:?}");
            assert_eq!(plan.pes(), 3);
            assert_eq!(plan.scheduler(), kind.to_string());
            let sim = plan.validate(&g);
            assert!(sim.completed(), "{kind:?}: {:?}", sim.failure);
            // Every plan's PE usage fits the machine.
            let placement = plan.placement(&g);
            assert!(placement.pes_used.iter().all(|&u| u <= 3), "{kind:?}");
        }
    }

    #[test]
    fn multiplex_preset_parses_slot_counts() {
        assert_eq!(
            "multiplex:4".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Multiplex(4)
        );
        assert_eq!(
            "MUX-SCH:7".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Multiplex(7)
        );
        assert_eq!(
            "mux".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Multiplex(2)
        );
        assert!("multiplex:0".parse::<SchedulerKind>().is_err());
        assert!("multiplex:x".parse::<SchedulerKind>().is_err());
        // Interned names are stable pointers: the same slot count always
        // hands out the same &'static str.
        let a = SchedulerKind::Multiplex(3).build(2).name();
        let b = SchedulerKind::Multiplex(3).build(5).name();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "MUX-SCH:3");
        assert_eq!(SchedulerKind::Multiplex(3).alias(), "multiplex:3");
    }

    #[test]
    fn multiplex_schedules_two_tenants_with_transition_cost() {
        // Two disjoint chains = two tenants; two slots = one transition.
        let mut b = Builder::new();
        let t: Vec<_> = (0..4).map(|i| b.compute(format!("a{i}"))).collect();
        b.chain(&t, 64);
        let u: Vec<_> = (0..4).map(|i| b.compute(format!("b{i}"))).collect();
        b.chain(&u, 32);
        let g = b.finish().unwrap();
        let plan = SchedulerKind::Multiplex(2).build(4).schedule(&g).unwrap();
        assert_eq!(plan.scheduler(), "MUX-SCH:2");
        let sim = plan.validate(&g);
        assert!(sim.completed(), "{:?}", sim.failure);
        // One transition at the default cost separates analytic metrics
        // from the simulated schedule.
        assert_eq!(
            plan.makespan(),
            sim.makespan + stg_sched::DEFAULT_TRANSITION_COST
        );
    }

    #[test]
    fn baseline_plan_exposes_no_buffers_and_trivially_validates() {
        let g = chain(4, 32);
        let plan = SchedulerKind::NonStreaming.build(2).schedule(&g).unwrap();
        assert!(plan.buffers().is_none());
        assert!(plan.partition().is_none());
        let sim = plan.validate(&g);
        assert!(sim.completed());
        assert_eq!(sim.makespan, plan.makespan());
    }

    #[test]
    fn streaming_plan_exposes_partition_and_buffers() {
        let g = chain(6, 128);
        let plan = SchedulerKind::StreamingRlx.build(3).schedule(&g).unwrap();
        assert!(plan.buffers().is_some());
        assert!(plan.partition().is_some());
        assert!(plan.block_schedule().is_some());
        assert_eq!(plan.metrics().blocks, plan.partition().unwrap().len());
    }
}
