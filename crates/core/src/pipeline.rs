//! End-to-end scheduling pipelines.

use stg_analysis::{
    non_streaming_depth, streaming_depth, BlockStartRule, Partition, Schedule, ScheduleError,
};
use stg_buffer::{buffer_sizes, BufferPlan, SizingPolicy};
use stg_des::{simulate_kind, SimConfig, SimKind, SimResult};
use stg_model::CanonicalGraph;
use stg_sched::{
    compute_metrics, downsampler_partition, elementwise_partition, non_streaming_schedule,
    schedule_partition_with, spatial_block_partition, temporal_multiplex_partition,
    upsampler_partition, ListSchedule, Metrics, SbVariant, StreamingResult,
    DEFAULT_TRANSITION_COST,
};

/// Which partitioning algorithm a [`StreamingScheduler`] runs before
/// scheduling: Algorithm 1 (the default, in its configured
/// [`SbVariant`]) or one of the appendix partitioners.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Partitioner {
    /// Algorithm 1 spatial-block partitioning (SB-LTS / SB-RLX).
    #[default]
    SpatialBlock,
    /// Theorem A.1's level-order partitioner for element-wise graphs.
    Elementwise,
    /// Algorithm 2's work-ordered partitioner for down-sampler graphs.
    Downsampler,
    /// The symmetric work-ordered partitioner for up-sampler graphs.
    Upsampler,
}

/// Configurable streaming scheduler (the paper's STR-SCH).
#[derive(Clone, Copy, Debug)]
pub struct StreamingScheduler {
    pes: usize,
    variant: SbVariant,
    partitioner: Partitioner,
    sizing: SizingPolicy,
    default_capacity: u64,
    rule: BlockStartRule,
}

impl StreamingScheduler {
    /// A scheduler for a device with `pes` processing elements, using the
    /// SB-LTS partitioning variant, converging-node buffer sizing, and
    /// gang-scheduled blocks.
    pub fn new(pes: usize) -> Self {
        StreamingScheduler {
            pes,
            variant: SbVariant::Lts,
            partitioner: Partitioner::SpatialBlock,
            sizing: SizingPolicy::Converging,
            default_capacity: 1,
            rule: BlockStartRule::Barrier,
        }
    }

    /// Selects the Algorithm 1 variant (SB-LTS or SB-RLX).
    pub fn variant(mut self, variant: SbVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the partitioning algorithm run before scheduling.
    pub fn partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Selects the block-start semantics (barrier gang scheduling vs. the
    /// literal dependency-based recurrences; see [`BlockStartRule`]).
    pub fn block_rule(mut self, rule: BlockStartRule) -> Self {
        self.rule = rule;
        self
    }

    /// Selects the buffer sizing policy.
    pub fn sizing(mut self, sizing: SizingPolicy) -> Self {
        self.sizing = sizing;
        self
    }

    /// Sets the FIFO capacity used where Eq. (5) requires none.
    pub fn default_capacity(mut self, cap: u64) -> Self {
        self.default_capacity = cap.max(1);
        self
    }

    /// The machine size this scheduler targets.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// The display name of the configured preset ("STR-SCH-1" for SB-LTS,
    /// "STR-SCH-2" for SB-RLX, `*` for dependency-based block starts,
    /// `-CYC` for cycles-only buffer sizing, or the appendix-partitioner
    /// names).
    pub fn preset_name(&self) -> &'static str {
        match self.partitioner {
            Partitioner::Elementwise => "ELW-SCH",
            Partitioner::Downsampler => "DSW-SCH",
            Partitioner::Upsampler => "USW-SCH",
            Partitioner::SpatialBlock => match (self.variant, self.rule, self.sizing) {
                (SbVariant::Lts, BlockStartRule::Barrier, SizingPolicy::Converging) => "STR-SCH-1",
                (SbVariant::Lts, BlockStartRule::Dependency, _) => "STR-SCH-1*",
                (SbVariant::Lts, _, _) => "STR-SCH-1-CYC",
                (SbVariant::Rlx, BlockStartRule::Barrier, SizingPolicy::Converging) => "STR-SCH-2",
                (SbVariant::Rlx, BlockStartRule::Dependency, _) => "STR-SCH-2*",
                (SbVariant::Rlx, _, _) => "STR-SCH-2-CYC",
            },
        }
    }

    /// Runs partitioning, scheduling, and buffer sizing.
    pub fn run(&self, g: &CanonicalGraph) -> Result<StreamingPlan, ScheduleError> {
        let partition = match self.partitioner {
            Partitioner::SpatialBlock => spatial_block_partition(g, self.pes, self.variant),
            Partitioner::Elementwise => elementwise_partition(g, self.pes),
            Partitioner::Downsampler => downsampler_partition(g, self.pes),
            Partitioner::Upsampler => upsampler_partition(g, self.pes),
        };
        self.run_with_partition(g, partition)
    }

    /// Runs scheduling and buffer sizing for a caller-provided partition
    /// (e.g. from the Theorem A.1 / Algorithm 2 partitioners).
    pub fn run_with_partition(
        &self,
        g: &CanonicalGraph,
        partition: Partition,
    ) -> Result<StreamingPlan, ScheduleError> {
        let result = schedule_partition_with(g, self.pes, partition, self.rule)?;
        let buffers = buffer_sizes(g, &result.schedule, self.sizing, self.default_capacity);
        Ok(StreamingPlan {
            pes: self.pes,
            result,
            buffers,
        })
    }
}

/// A complete streaming execution plan: partition, schedule, metrics, and
/// FIFO buffer sizes.
#[derive(Clone, Debug)]
pub struct StreamingPlan {
    /// Machine size the plan was computed for.
    pub pes: usize,
    /// Partition, schedule and metrics.
    pub result: StreamingResult,
    /// FIFO capacities per edge (Section 6).
    pub buffers: BufferPlan,
}

impl StreamingPlan {
    /// The schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.result.schedule
    }

    /// The evaluation metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.result.metrics
    }

    /// Validates the plan by element-level discrete event simulation with
    /// the computed buffer sizes, using the reference simulator.
    pub fn validate(&self, g: &CanonicalGraph) -> SimResult {
        self.validate_with(g, SimKind::Reference)
    }

    /// [`Self::validate`] with an explicit simulator choice. The batched
    /// simulator produces bit-identical results at a fraction of the
    /// wall-clock cost — cheap enough to validate every cell of a sweep.
    pub fn validate_with(&self, g: &CanonicalGraph, sim: SimKind) -> SimResult {
        simulate_kind(
            sim,
            g,
            &self.result.schedule,
            &self.buffers,
            SimConfig::default(),
        )
    }

    /// Renders the plan as a human-readable report: per-block task tables
    /// (the paper's Figure 8 format) plus the sized FIFO channels.
    pub fn describe(&self, g: &CanonicalGraph) -> String {
        use std::fmt::Write;
        let s = &self.result.schedule;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "streaming plan: {} tasks in {} spatial blocks on {} PEs, makespan {}",
            g.compute_count(),
            self.result.partition.len(),
            self.pes,
            s.makespan
        );
        for (bi, block) in self.result.partition.blocks.iter().enumerate() {
            let (start, end) = s.block_spans[bi];
            let _ = writeln!(out, "block {bi} [{start}..{end}] ({} tasks)", block.len());
            let _ = writeln!(
                out,
                "  {:<20} {:>8} {:>8} {:>8}  S_o",
                "task", "ST", "FO", "LO"
            );
            let mut members = block.clone();
            members.sort_by_key(|v| s.st[v.index()]);
            for v in members {
                let so = s.so[v.index()]
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    out,
                    "  {:<20} {:>8} {:>8} {:>8}  {}",
                    truncate(&g.node(v).name, 20),
                    s.st[v.index()],
                    s.fo[v.index()],
                    s.lo[v.index()],
                    so
                );
            }
        }
        if self.buffers.sized.is_empty() {
            let _ = writeln!(
                out,
                "no skew-sized channels (all FIFOs at default capacity)"
            );
        } else {
            let _ = writeln!(out, "sized FIFO channels:");
            for &(e, cap, kind) in &self.buffers.sized {
                let edge = g.dag().edge(e);
                let _ = writeln!(
                    out,
                    "  {} -> {}: {} elements ({:?})",
                    g.node(edge.src).name,
                    g.node(edge.dst).name,
                    cap,
                    kind
                );
            }
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}

/// The buffered-communication baseline scheduler (the paper's NSTR-SCH).
#[derive(Clone, Copy, Debug)]
pub struct NonStreamingScheduler {
    pes: usize,
}

impl NonStreamingScheduler {
    /// A baseline scheduler for `pes` processing elements.
    pub fn new(pes: usize) -> Self {
        NonStreamingScheduler { pes }
    }

    /// The machine size this scheduler targets.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Runs critical-path list scheduling with insertion.
    pub fn run(&self, g: &CanonicalGraph) -> NonStreamingPlan {
        let schedule = non_streaming_schedule(g, self.pes);
        let t_inf = streaming_depth(g).unwrap_or(0);
        let t_nstr = non_streaming_depth(g).unwrap_or(0);
        let metrics = compute_metrics(
            g,
            schedule.makespan,
            schedule.utilization(g, self.pes),
            1,
            t_inf,
            t_nstr,
        );
        NonStreamingPlan { schedule, metrics }
    }
}

/// The baseline's schedule and metrics.
#[derive(Clone, Debug)]
pub struct NonStreamingPlan {
    /// Task start/finish times and PE assignments.
    pub schedule: ListSchedule,
    /// Evaluation metrics (SLR rather than SSLR is the meaningful ratio).
    pub metrics: Metrics,
}

/// The temporal-multiplexing scheduler (MUX-SCH): packs several tenants'
/// graphs — the weakly connected components of the compute-task
/// precedence DAG — into time slots by LPT on total work, cuts each
/// tenant into level-ordered spatial blocks, and charges a configurable
/// transition cost per slot switch (device reconfiguration between
/// tenant groups) on top of the streaming makespan.
///
/// The transition cost inflates only the plan's *metrics*; the schedule
/// and buffer sizes are exactly what the streaming pipeline produces for
/// the slot-major partition, so simulation still validates the schedule
/// itself.
#[derive(Clone, Copy, Debug)]
pub struct MultiplexScheduler {
    pes: usize,
    slots: usize,
    transition_cost: u64,
}

impl MultiplexScheduler {
    /// A scheduler for `pes` processing elements multiplexing tenants
    /// over `slots` time slots (clamped to at least one), charging
    /// [`DEFAULT_TRANSITION_COST`] per slot transition.
    pub fn new(pes: usize, slots: usize) -> Self {
        MultiplexScheduler {
            pes,
            slots: slots.max(1),
            transition_cost: DEFAULT_TRANSITION_COST,
        }
    }

    /// Sets the cycles charged per slot-to-slot transition.
    pub fn transition_cost(mut self, cost: u64) -> Self {
        self.transition_cost = cost;
        self
    }

    /// The machine size this scheduler targets.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// The number of time slots tenants are packed into.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Runs tenant packing, streaming scheduling, buffer sizing, and the
    /// transition-cost adjustment.
    pub fn run(&self, g: &CanonicalGraph) -> Result<StreamingPlan, ScheduleError> {
        let layout = temporal_multiplex_partition(g, self.pes, self.slots);
        let transitions = layout.transitions();
        let mut result =
            schedule_partition_with(g, self.pes, layout.partition, BlockStartRule::Barrier)?;
        let buffers = buffer_sizes(g, &result.schedule, SizingPolicy::Converging, 1);
        let extra = self.transition_cost * transitions;
        if extra > 0 {
            let old = result.metrics.makespan;
            let makespan = old + extra;
            // Utilization is busy/(P·makespan): rescale to the stretched
            // span so the derived metrics stay self-consistent.
            let utilization =
                result.schedule.utilization(g, self.pes) * old as f64 / makespan as f64;
            let t_inf = streaming_depth(g).unwrap_or(0);
            let t_nstr = non_streaming_depth(g).unwrap_or(0);
            result.metrics = compute_metrics(
                g,
                makespan,
                utilization,
                result.partition.len(),
                t_inf,
                t_nstr,
            );
        }
        Ok(StreamingPlan {
            pes: self.pes,
            result,
            buffers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg_model::Builder;

    fn chain_graph(n: usize, k: u64) -> CanonicalGraph {
        let mut b = Builder::new();
        let t: Vec<_> = (0..n).map(|i| b.compute(format!("t{i}"))).collect();
        b.chain(&t, k);
        b.finish().unwrap()
    }

    #[test]
    fn full_pipeline_runs_and_validates() {
        let g = chain_graph(8, 128);
        for variant in [SbVariant::Lts, SbVariant::Rlx] {
            let plan = StreamingScheduler::new(4).variant(variant).run(&g).unwrap();
            assert!(plan.metrics().speedup > 1.0);
            let sim = plan.validate(&g);
            assert!(sim.completed(), "{variant}: {:?}", sim.failure);
            assert_eq!(sim.makespan, plan.metrics().makespan);
        }
    }

    #[test]
    fn baseline_matches_sequential_on_chains() {
        let g = chain_graph(8, 128);
        let plan = NonStreamingScheduler::new(8).run(&g);
        assert_eq!(plan.metrics.makespan, g.sequential_time());
        assert!((plan.metrics.speedup - 1.0).abs() < 1e-12);
        assert!((plan.metrics.slr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_partition_accepted() {
        use stg_sched::elementwise_partition;
        let g = chain_graph(6, 64);
        let part = elementwise_partition(&g, 2);
        let plan = StreamingScheduler::new(2)
            .run_with_partition(&g, part)
            .unwrap();
        assert!(plan.metrics().blocks >= 3);
        let sim = plan.validate(&g);
        assert!(sim.completed());
    }

    #[test]
    fn describe_renders_blocks_and_channels() {
        // Figure 9 ①-shaped graph so a sized channel appears.
        let mut b = Builder::new();
        let n: Vec<_> = (0..5).map(|i| b.compute(format!("task{i}"))).collect();
        b.edge(n[0], n[1], 32);
        b.edge(n[1], n[2], 4);
        b.edge(n[2], n[3], 2);
        b.edge(n[3], n[4], 32);
        b.edge(n[0], n[4], 32);
        let g = b.finish().unwrap();
        let plan = StreamingScheduler::new(8).run(&g).unwrap();
        let report = plan.describe(&g);
        assert!(report.contains("block 0"));
        assert!(report.contains("task0"));
        assert!(report.contains("18 elements"), "report:\n{report}");
        assert!(report.contains("makespan 51"));
    }

    #[test]
    fn multiplex_charges_transitions_but_validates() {
        // Two disjoint tenant chains in one canonical graph.
        let mut b = Builder::new();
        let a: Vec<_> = (0..4).map(|i| b.compute(format!("a{i}"))).collect();
        b.chain(&a, 64);
        let c: Vec<_> = (0..4).map(|i| b.compute(format!("b{i}"))).collect();
        b.chain(&c, 32);
        let g = b.finish().unwrap();
        let sched = MultiplexScheduler::new(4, 2).transition_cost(100);
        let plan = sched.run(&g).unwrap();
        // Two tenants, two slots → one transition charged on the metrics
        // but not on the simulated schedule.
        let sim = plan.validate(&g);
        assert!(sim.completed(), "{:?}", sim.failure);
        assert_eq!(plan.metrics().makespan, sim.makespan + 100);
        // Single-tenant graphs pay nothing: metrics match the simulator.
        let single = chain_graph(6, 64);
        let plan = MultiplexScheduler::new(3, 4).run(&single).unwrap();
        let sim = plan.validate(&single);
        assert!(sim.completed());
        assert_eq!(plan.metrics().makespan, sim.makespan);
    }

    #[test]
    fn streaming_wins_on_the_paper_suite_smoke() {
        use stg_workloads::{generate, Topology};
        let g = generate(Topology::GaussianElimination { m: 8 }, 11);
        let p = 16;
        let s = StreamingScheduler::new(p).run(&g).unwrap();
        let n = NonStreamingScheduler::new(p).run(&g);
        // Streaming is allowed to tie but typically wins; it must never be
        // *worse* than 2x the baseline on these workloads.
        assert!(s.metrics().makespan as f64 <= 2.0 * n.metrics.makespan as f64);
    }
}
