//! # stg-core
//!
//! The high-level entry point of the streaming task graph scheduler: one
//! call runs the full pipeline of the paper —
//!
//! 1. partition the canonical task graph into spatial blocks (Algorithm 1),
//! 2. compute per-block steady-state streaming intervals (Theorem 4.1),
//! 3. derive the `ST/FO/LO` schedule (Section 5.1),
//! 4. size the FIFO channels for deadlock freedom (Section 6),
//!
//! plus the non-streaming baseline behind the same API, and optional
//! validation by discrete event simulation (Appendix B).
//!
//! ```
//! use stg_core::prelude::*;
//!
//! // An 8-task chain with 256-element messages on 4 PEs.
//! let mut b = Builder::new();
//! let tasks: Vec<_> = (0..8).map(|i| b.compute(format!("t{i}"))).collect();
//! b.chain(&tasks, 256);
//! let graph = b.finish().expect("canonical");
//!
//! let plan = StreamingScheduler::new(4).run(&graph).expect("schedulable");
//! let baseline = NonStreamingScheduler::new(4).run(&graph);
//! assert!(plan.metrics().makespan < baseline.metrics.makespan);
//!
//! // The schedule survives element-level simulation.
//! let sim = plan.validate(&graph);
//! assert!(sim.completed());
//! ```

#![warn(missing_docs)]

pub mod pipeline;
pub mod prelude;
pub mod repair;
pub mod scheduler;

pub use pipeline::{
    MultiplexScheduler, NonStreamingPlan, NonStreamingScheduler, Partitioner, StreamingPlan,
    StreamingScheduler,
};
pub use repair::{RepairReuse, Repaired};
pub use scheduler::{ParseSchedulerError, Plan, PlanDetail, Scheduler, SchedulerKind};
