//! # streaming-sched
//!
//! A Rust reproduction of *"Streaming Task Graph Scheduling for Dataflow
//! Architectures"* (De Matteis, Gianinazzi, de Fine Licht, Hoefler — HPDC'23).
//!
//! This facade crate re-exports the whole workspace. See the individual
//! crates for the building blocks:
//!
//! - [`stg_graph`] — arena DAG substrate, rational arithmetic, graph algorithms.
//! - [`stg_model`] — canonical task graphs (Section 3) and canonical expansions
//!   of generic computations (outer product, matmul, normalization, softmax).
//! - [`stg_analysis`] — steady-state streaming analysis: streaming intervals
//!   (Theorem 4.1), work/depth, levels and streaming depth (Section 4).
//! - [`stg_sched`] — spatial-block partitioning heuristics (SB-LTS / SB-RLX,
//!   Algorithm 1 and the appendix variants) plus the non-streaming
//!   critical-path list-scheduling baseline (Section 5).
//! - [`stg_buffer`] — FIFO buffer sizing for deadlock-free pipelined execution
//!   (Section 6).
//! - [`stg_des`] — element-level discrete event simulator used to validate
//!   schedules (Appendix B).
//! - [`stg_workloads`] — the workload layer: `WorkloadFamily` trait and
//!   `WorkloadKind` registry over the synthetic generators (Chain, FFT,
//!   Gaussian elimination, tiled Cholesky, stencil, SpMV, attention,
//!   fork–join), lazy ML recipes, and memoized `(spec, seed)` instantiation.
//! - [`stg_ml`] — ONNX-like operator graphs lowered to canonical task graphs
//!   (ResNet-50 and a transformer encoder layer, Section 7.3).
//! - [`stg_csdf`] — cyclo-static dataflow conversion and self-timed throughput
//!   analysis used as the SDF3/Kiter comparison substrate (Section 7.2).
//! - [`stg_core`] — the high-level `StreamingScheduler` pipeline tying
//!   everything together.

pub use stg_analysis as analysis;
pub use stg_buffer as buffer;
pub use stg_core as core;
pub use stg_csdf as csdf;
pub use stg_des as des;
pub use stg_graph as graph;
pub use stg_ml as ml;
pub use stg_model as model;
pub use stg_sched as sched;
pub use stg_workloads as workloads;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use stg_core::prelude::*;
}
