//! Scheduling real ML inference graphs on a dataflow device: a transformer
//! encoder layer and (optionally, pass `--resnet`) ResNet-50, as in the
//! paper's Table 2.
//!
//! ```sh
//! cargo run --release --example ml_inference            # transformer only
//! cargo run --release --example ml_inference -- --resnet
//! ```

use stg_ml::{encoder_layer, resnet50, LowerConfig, ResNetConfig, TransformerConfig};
use streaming_sched::prelude::*;

fn main() {
    let with_resnet = std::env::args().any(|a| a == "--resnet");

    println!("== Transformer encoder layer (Vaswani base, seq=128) ==");
    let tf = encoder_layer(&TransformerConfig::default());
    describe(&tf);
    for pes in [256usize, 512, 1024] {
        run(&tf, pes);
    }

    if with_resnet {
        println!("\n== ResNet-50 (224×224) ==");
        let rn = resnet50(&ResNetConfig {
            image: 224,
            lower: LowerConfig { max_parallel: 256 },
        });
        describe(&rn);
        for pes in [512usize, 2048] {
            run(&rn, pes);
        }
    }
}

fn describe(g: &CanonicalGraph) {
    let buffers = g
        .node_ids()
        .filter(|&v| g.kind(v) == NodeKind::Buffer)
        .count();
    println!(
        "  {} nodes ({} tasks, {} buffer nodes), T1 = {} cycles",
        g.node_count(),
        g.compute_count(),
        buffers,
        g.sequential_time(),
    );
}

fn run(g: &CanonicalGraph, pes: usize) {
    // Both schedulers behind the unified `Scheduler` trait.
    let plan = SchedulerKind::StreamingLts
        .build(pes)
        .schedule(g)
        .expect("schedulable");
    let baseline = SchedulerKind::NonStreaming
        .build(pes)
        .schedule(g)
        .expect("baseline always schedules");
    println!(
        "  P={pes:5}: streaming {:8} cycles ({:3} blocks, speedup {:6.1}) | buffered {:8} \
         (speedup {:6.1}) | gain {:4.2}x",
        plan.makespan(),
        plan.metrics().blocks,
        plan.metrics().speedup,
        baseline.makespan(),
        baseline.metrics().speedup,
        baseline.makespan() as f64 / plan.makespan() as f64,
    );
}
