//! Reproduces the paper's worked examples: the Figure 8 spatial-block
//! schedule table and the Figure 9 buffer-space computations (18 and 32
//! elements), including the capacity-1 deadlock of graph ①.
//!
//! ```sh
//! cargo run --release --example paper_figures
//! ```

use streaming_sched::prelude::*;

fn main() {
    figure8();
    figure9();
}

fn figure8() {
    println!("== Figure 8: a spatial block and its schedule ==\n");
    // Source (O=16) feeding a 1/4 down-sampler chain and a 2x up-sampler
    // chain; the WCC's largest producer is node 3 (O=32).
    let mut b = Builder::new();
    let n0 = b.source("0");
    let n1 = b.compute("1");
    let n2 = b.compute("2");
    let n3 = b.compute("3");
    let n4 = b.compute("4");
    let s2 = b.sink("s2");
    let s4 = b.sink("s4");
    b.edge(n0, n1, 16);
    b.edge(n0, n3, 16);
    b.edge(n1, n2, 4);
    b.edge(n3, n4, 32);
    b.edge(n2, s2, 4);
    b.edge(n4, s4, 8);
    let g = b.finish().expect("canonical");

    let s = schedule(&g, &Partition::single_block(&g)).expect("schedulable");
    println!("  Task  ST  LO  FO     (paper: 1: 1/32/8  2: 8/33/9  3: 1/33/2  4: 2/34/6)");
    for (label, v) in [("1", n1), ("2", n2), ("3", n3), ("4", n4)] {
        println!(
            "  {label:4} {:3} {:3} {:3}",
            s.st[v.index()],
            s.lo[v.index()],
            s.fo[v.index()]
        );
    }
    println!("  makespan = {}\n", s.makespan);
}

fn figure9() {
    println!("== Figure 9 ①: deadlock and buffer sizing ==\n");
    let mut b = Builder::new();
    let n: Vec<_> = (0..5).map(|i| b.compute(format!("{i}"))).collect();
    b.edge(n[0], n[1], 32);
    b.edge(n[1], n[2], 4);
    b.edge(n[2], n[3], 2);
    b.edge(n[3], n[4], 32);
    let shortcut = b.edge(n[0], n[4], 32);
    let g = b.finish().expect("canonical");

    let s = schedule(&g, &Partition::single_block(&g)).expect("schedulable");

    // With 1-element FIFOs the lock-step multicast of task 0 deadlocks.
    let tight = simulate_with(&g, &s, |_| None, SimConfig::default());
    match tight.failure {
        Some(SimFailure::Deadlock(ref nodes)) => {
            println!("  capacity-1 channels: DEADLOCK involving {nodes:?}")
        }
        ref other => println!("  unexpected: {other:?}"),
    }

    // Eq. (5) sizes the shortcut channel to 18 elements (as in the paper).
    let plan = buffer_sizes(&g, &s, SizingPolicy::Converging, 1);
    println!(
        "  Eq.(5) buffer space for edge (0,4): {} elements (paper: 18)",
        plan.capacity_of(shortcut).expect("streaming edge"),
    );
    let sized = simulate(&g, &s, &plan, SimConfig::default());
    println!(
        "  sized channels: completed = {}, simulated makespan {} (analytic {})\n",
        sized.completed(),
        sized.makespan,
        s.makespan,
    );

    println!("== Figure 9 ②: bubble-preventing buffer ==\n");
    let mut b = Builder::new();
    let n: Vec<_> = (0..6).map(|i| b.compute(format!("{i}"))).collect();
    b.edge(n[0], n[1], 32);
    b.edge(n[1], n[2], 1);
    b.edge(n[2], n[5], 32);
    b.edge(n[3], n[4], 32);
    let slow_side = b.edge(n[4], n[5], 32);
    let g = b.finish().expect("canonical");
    let s = schedule(&g, &Partition::single_block(&g)).expect("schedulable");
    let plan = buffer_sizes(&g, &s, SizingPolicy::Converging, 1);
    println!(
        "  Eq.(5) buffer space for the channel into task 5: {} elements (paper: 32)",
        plan.capacity_of(slow_side).expect("streaming edge"),
    );
    let sized = simulate(&g, &s, &plan, SimConfig::default());
    println!(
        "  with sizing, task 4 completes at {} (scheduled: {}) — no bubbles",
        sized.lo[n[4].index()].expect("completed"),
        s.lo[n[4].index()],
    );
}
