//! The scenario-sweep engine in five lines: declare a grid of
//! (topology × seed × PE count × scheduler) scenarios, evaluate it in
//! parallel, and aggregate or export the deterministic results.
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```

use stg_core::SchedulerKind;
use stg_experiments::{summary, SweepSpec};

fn main() {
    // The paper's full synthetic grid at 10 graphs per cell, with one
    // extra scheduler preset mixed in.
    let mut spec = SweepSpec::paper(10, 2024);
    spec.schedulers.push(SchedulerKind::Elementwise);
    spec.validate = true;

    let sweep = spec.run();
    println!(
        "evaluated {} scenarios ({} errors, {} deadlocks)\n",
        sweep.runs.len(),
        sweep.errors(),
        sweep.deadlocks()
    );

    println!("workload      #PEs  scheduler      median speedup   median SSLR");
    for cell in sweep.cells() {
        let speed = summary(&cell.values(|r| r.metrics.speedup));
        let sslr = summary(&cell.values(|r| r.metrics.sslr));
        println!(
            "{:12} {:5}  {:13}  {:14.2}   {:11.2}",
            cell.workload.name(),
            cell.pes,
            cell.scheduler.to_string(),
            speed.median,
            sslr.median,
        );
    }

    // The same sweep exports as byte-stable CSV/JSON for downstream
    // tooling; rerunning with any thread count yields identical bytes.
    let csv = sweep.to_csv();
    println!("\nCSV export: {} rows", csv.lines().count() - 1);
}
