//! The scenario-sweep engine in a few lines: declare a grid of
//! (workload × seed × PE count × scheduler) scenarios, evaluate it in
//! parallel, and aggregate or export the deterministic results.
//!
//! Workloads come from the `WorkloadKind` registry, so extending the
//! paper grid with a new family is one parsed spec string — and the
//! engine's memoization cache instantiates each `(spec, seed)` graph
//! exactly once across all scheduler/PE cells.
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```

use stg_core::SchedulerKind;
use stg_experiments::engine::WorkloadSpec;
use stg_experiments::{summary, SweepSpec, WorkloadFamily, WorkloadKind};

fn main() {
    // The paper's full synthetic grid at 10 graphs per cell, with one
    // extra scheduler preset mixed in — plus a workload family the paper
    // never ran, straight from the registry.
    let mut spec = SweepSpec::paper(10, 2024);
    spec.schedulers.push(SchedulerKind::Elementwise);
    spec.validate = true;
    let stencil: WorkloadKind = "stencil2d:8x8".parse().expect("registered spec");
    spec.workloads.push(WorkloadSpec {
        pes: stencil.default_pes(),
        workload: stencil,
    });

    let sweep = spec.run();
    println!(
        "evaluated {} scenarios ({} errors, {} deadlocks); graph cache: {} hits, {} misses\n",
        sweep.runs.len(),
        sweep.errors(),
        sweep.deadlocks(),
        sweep.cache.hits,
        sweep.cache.misses,
    );

    println!("workload      #PEs  scheduler      median speedup   median SSLR");
    for cell in sweep.cells() {
        let speed = summary(&cell.values(|r| r.metrics.speedup));
        let sslr = summary(&cell.values(|r| r.metrics.sslr));
        println!(
            "{:12} {:5}  {:13}  {:14.2}   {:11.2}",
            cell.workload.label(),
            cell.pes,
            cell.scheduler.to_string(),
            speed.median,
            sslr.median,
        );
    }

    // The same sweep exports as byte-stable CSV/JSON for downstream
    // tooling; rerunning with any thread count yields identical bytes.
    let csv = sweep.to_csv();
    println!("\nCSV export: {} rows", csv.lines().count() - 1);
}
