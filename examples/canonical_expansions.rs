//! The Section 3.2 canonical expansions in action: outer product, three
//! matrix-multiply strategies, vector normalization, and softmax — showing
//! how the implementation choice changes streaming opportunities, depth,
//! and the schedule.
//!
//! ```sh
//! cargo run --release --example canonical_expansions
//! ```

use stg_model::expansions::{
    matmul_column_parallel, matmul_inner_product, matmul_outer_product, outer_product, softmax,
    vector_norm_buffered, vector_norm_streamed, OuterVariant,
};
use streaming_sched::prelude::*;

fn report(name: &str, g: &CanonicalGraph, pes: usize) {
    let plan = SchedulerKind::StreamingLts
        .build(pes)
        .schedule(g)
        .expect("schedulable");
    let t1 = g.sequential_time();
    println!(
        "  {name:34} {:5} tasks  T1 {:8}  T_s∞ {:8}  makespan {:8}  speedup {:5.2}",
        g.compute_count(),
        t1,
        streaming_depth(g).expect("acyclic"),
        plan.makespan(),
        plan.metrics().speedup,
    );
}

fn main() {
    let pes = 16;
    println!("== Outer product u·vᵀ (N=64, M=32), Figure 2 ==");
    for (name, variant) in [
        ("① stream u, buffer vᵀ", OuterVariant::StreamU),
        ("② stream vᵀ, buffer u", OuterVariant::StreamV),
        ("③ buffer both", OuterVariant::BufferBoth),
    ] {
        let (g, _) = outer_product(64, 32, variant);
        report(name, &g, pes);
    }

    println!("\n== MatMul C = A·B (N=32, K=16, M=8), Figure 3 ==");
    let (g, _) = matmul_inner_product(32, 16, 8);
    report("① inner product (no streaming)", &g, pes);
    let (g, _) = matmul_column_parallel(32, 16, 8, false);
    report("② column-parallel, buffered C", &g, pes);
    let (g, _) = matmul_column_parallel(32, 16, 8, true);
    report("② column-parallel, streamed C", &g, pes);
    let (g, _) = matmul_outer_product(32, 16, 8);
    report("③ outer-product + adder tree", &g, pes);

    println!("\n== Vector normalization y = x/‖x‖ (N=256), Figure 4 ==");
    let (g, _) = vector_norm_buffered(256);
    report("① buffered (serializes)", &g, pes);
    let (g, _) = vector_norm_streamed(256);
    report("② streamed (needs Eq.5 buffers)", &g, pes);
    // The streamed variant deadlocks without sized buffers:
    let (g, _) = vector_norm_streamed(256);
    let s = schedule(&g, &Partition::single_block(&g)).expect("schedulable");
    let tight = simulate_with(&g, &s, |_| None, SimConfig::default());
    let plan = buffer_sizes(&g, &s, SizingPolicy::Converging, 1);
    let sized = simulate(&g, &s, &plan, SimConfig::default());
    println!(
        "    capacity-1 simulation deadlocks: {} | sized ({} elements total): completes = {}",
        !tight.completed(),
        plan.total_elements,
        sized.completed(),
    );

    println!("\n== Softmax (N=256), Figure 5 ==");
    let (g, _) = softmax(256);
    report("numerically stable softmax", &g, pes);
    let (g, h) = softmax(256);
    let s = schedule(&g, &Partition::single_block(&g)).expect("schedulable");
    println!(
        "    the sub→exp→sum pipeline streams: FO(exp) = {} right after FO(sub) = {}",
        s.fo[h.exp.index()],
        s.fo[h.sub.index()],
    );
}
