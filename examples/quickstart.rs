//! Quickstart: build a canonical task graph, schedule it on a dataflow
//! device, size its FIFO channels, and validate the plan by simulation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use streaming_sched::prelude::*;

fn main() {
    // An 8-stage processing pipeline over 1024-element vectors, with a
    // reduction in the middle: think sensor data flowing through filters
    // into a statistic that renormalizes the stream.
    let mut b = Builder::new();
    let source = b.source("sensor");
    let stages: Vec<_> = (0..4).map(|i| b.compute(format!("filter{i}"))).collect();
    b.edge(source, stages[0], 1024);
    b.chain(&stages, 1024);
    let stat = b.compute("D(stat)"); // reduces 1024 -> 1
    b.edge(stages[3], stat, 1024);
    let rep = b.compute("U(rep)"); // replicates the scalar back to 1024
    b.edge(stat, rep, 1);
    let norm = b.compute("E(norm)"); // element-wise renormalization
    b.edge(rep, norm, 1024);
    b.edge(stages[3], norm, 1024); // second use of the filtered stream
    let sink = b.sink("output");
    b.edge(norm, sink, 1024);
    let graph = b.finish().expect("graph is canonical");

    println!(
        "graph: {} nodes, {} tasks, T1 = {} cycles, T_s∞ = {} cycles",
        graph.node_count(),
        graph.compute_count(),
        graph.sequential_time(),
        streaming_depth(&graph).expect("acyclic"),
    );

    for pes in [2usize, 4, 8] {
        // Every scheduler preset lives behind the same `Scheduler` trait:
        // the streaming pipeline (spatial blocks + pipelined execution)
        // and the classical buffered baseline.
        let plan = SchedulerKind::StreamingLts
            .build(pes)
            .schedule(&graph)
            .expect("schedulable");
        let baseline = SchedulerKind::NonStreaming
            .build(pes)
            .schedule(&graph)
            .expect("baseline always schedules");

        println!(
            "\nP={pes}: streaming makespan {} ({} blocks, speedup {:.2}, SSLR {:.2})",
            plan.makespan(),
            plan.metrics().blocks,
            plan.metrics().speedup,
            plan.metrics().sslr,
        );
        println!(
            "      buffered  makespan {} (speedup {:.2})  →  gain {:.2}x",
            baseline.makespan(),
            baseline.metrics().speedup,
            baseline.makespan() as f64 / plan.makespan() as f64,
        );

        // FIFO sizing (Section 6) and element-level validation (Appendix B).
        let buffers = plan.buffers().expect("streaming plans size FIFOs");
        println!(
            "      FIFO plan: {} total elements across {} sized channels",
            buffers.total_elements,
            buffers.sized.len(),
        );
        let sim = plan.validate(&graph);
        assert!(sim.completed(), "sized plan must not deadlock");
        println!(
            "      simulation: makespan {} ({} element beats) — matches analysis: {}",
            sim.makespan,
            sim.beats,
            sim.makespan == plan.makespan(),
        );
    }

    // A full plan report (ST/FO/LO per block, sized FIFO channels).
    let plan = StreamingScheduler::new(4).run(&graph).expect("schedulable");
    println!("\n{}", plan.describe(&graph));
}
