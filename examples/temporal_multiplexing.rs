//! Temporal vs spatial multiplexing: sweep the PE count on a random
//! Cholesky task graph and watch the partitioner trade spatial blocks for
//! pipelining, comparing both Algorithm 1 variants against the buffered
//! baseline.
//!
//! ```sh
//! cargo run --release --example temporal_multiplexing
//! ```

use stg_workloads::{WorkloadFamily, WorkloadKind};
use streaming_sched::prelude::*;

fn main() {
    // Any registered spec string instantiates through the shared,
    // memoized workload registry.
    let workload: WorkloadKind = "chol:8".parse().expect("registered spec");
    let g = workload.instantiate(2024);
    println!(
        "tiled Cholesky T=8: {} tasks, T1 = {}, T_s∞ = {}, buffered critical path = {}\n",
        g.compute_count(),
        g.sequential_time(),
        streaming_depth(&g).expect("acyclic"),
        non_streaming_depth(&g).expect("acyclic"),
    );
    println!(" #PEs  scheduler  blocks  makespan  speedup   SSLR   util | NSTR speedup");
    for pes in [8usize, 16, 32, 64, 96, 120] {
        let nstr = SchedulerKind::NonStreaming
            .build(pes)
            .schedule(&g)
            .expect("baseline always schedules");
        for kind in [SchedulerKind::StreamingLts, SchedulerKind::StreamingRlx] {
            let plan = kind.build(pes).schedule(&g).expect("schedulable");
            let m = plan.metrics();
            println!(
                "{pes:5}  {kind}   {:5}  {:8}  {:7.2}  {:5.2}  {:5.2} | {:7.2}",
                m.blocks,
                m.makespan,
                m.speedup,
                m.sslr,
                m.utilization,
                nstr.metrics().speedup,
            );
        }
    }
    println!("\nWith P close to the task count, SB-RLX packs everything into one");
    println!("spatial block and the SSLR approaches 1: fully spatial execution.");

    // Multi-tenant temporal multiplexing: three tenants' graphs share
    // one device through the `multiplex:<slots>` preset. Each weakly-
    // connected component is a tenant; tenants are LPT-packed into time
    // slots, each slot is scheduled with the streaming pipeline, and
    // the metrics charge a reconfiguration cost per slot transition.
    let mut b = Builder::new();
    for (tenant, (tasks, volume)) in [(6usize, 512u64), (4, 256), (3, 128)].iter().enumerate() {
        let t: Vec<_> = (0..*tasks)
            .map(|i| b.compute(format!("tenant{tenant}_t{i}")))
            .collect();
        b.chain(&t, *volume);
    }
    let shared = b.finish().expect("disjoint tenant chains are acyclic");
    println!("\nthree tenants on one 8-PE device, `multiplex:<slots>`:");
    println!(" slots  scheduler       makespan  speedup   util");
    for slots in [1usize, 2, 3] {
        let kind: SchedulerKind = format!("multiplex:{slots}").parse().expect("registered");
        let plan = kind.build(8).schedule(&shared).expect("schedulable");
        let m = plan.metrics();
        println!(
            "{slots:6}  {kind}   {:8}  {:7.2}  {:5.2}",
            m.makespan, m.speedup, m.utilization,
        );
    }
    println!("\nMore slots serialize tenants (each transition costs cycles) but");
    println!("give every tenant the full device while its slot runs.");
}
