//! Vendored, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the benchmark harness API used by `crates/bench` is re-implemented here:
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], [`Throughput`], and
//! [`Bencher::iter`].
//!
//! Measurement is deliberately simple: a short warm-up, then batched wall
//! clock timing until a time budget is exhausted, reporting the per-iteration
//! mean and min. There is no statistical analysis, outlier detection, HTML
//! report, or baseline comparison — swap the real crate back in (same API
//! subset) when network access is available for publication-grade numbers.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. simulated beats) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    measured: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly and records per-iteration timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run for a short period to stabilize caches/branch state.
        let warmup_end = Instant::now() + Duration::from_millis(50);
        while Instant::now() < warmup_end {
            black_box(f());
        }

        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters: u64 = 0;
        let mut min = Duration::MAX;
        while start.elapsed() < budget && iters < 1_000_000 {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            if dt < min {
                min = dt;
            }
            iters += 1;
        }
        self.measured = Some(Measurement {
            mean: start.elapsed() / iters.max(1) as u32,
            min,
            iters,
        });
    }
}

/// Top-level benchmark driver; one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used to annotate subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    /// Runs one benchmark in the group without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.throughput, f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Positional CLI arguments act as substring filters on benchmark ids, as
/// with the real criterion: `cargo bench -p stg_bench fft` runs only the
/// benches whose full id contains "fft". Harness flags (`--bench`, …) are
/// ignored.
fn filters() -> &'static [String] {
    static FILTERS: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
    FILTERS.get_or_init(|| {
        std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect()
    })
}

fn run_one<F: FnOnce(&mut Bencher)>(id: &str, throughput: Option<Throughput>, f: F) {
    let active = filters();
    if !active.is_empty() && !active.iter().any(|f| id.contains(f.as_str())) {
        return;
    }
    let mut b = Bencher { measured: None };
    f(&mut b);
    match b.measured {
        Some(m) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!(
                    "  thrpt: {:.3} Melem/s",
                    n as f64 / m.mean.as_secs_f64() / 1e6
                ),
                Throughput::Bytes(n) => format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / m.mean.as_secs_f64() / (1024.0 * 1024.0)
                ),
            });
            println!(
                "{id:<48} time: [mean {:>12?}  min {:>12?}]  iters: {}{}",
                m.mean,
                m.min,
                m.iters,
                rate.unwrap_or_default()
            );
        }
        None => println!("{id:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Harness flags (`--bench`, …) are ignored; positional arguments
            // filter benchmark ids by substring (see `filters`).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
