//! Vendored, dependency-free stand-in for the [`rand`] crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the small slice of the `rand` API the workspace actually uses is
//! re-implemented here: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`Rng::gen_range`] over integer ranges.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — deterministic and high-quality, but **not** bit-compatible
//! with the real `rand::rngs::StdRng` (ChaCha12). Workloads generated from a
//! seed are reproducible within this repository, not against external runs.
//!
//! [`rand`]: https://crates.io/crates/rand

#![warn(missing_docs)]

/// A low-level source of uniformly distributed random `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Accepts half-open (`a..b`) and inclusive (`a..=b`) integer ranges.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly with a single RNG pass.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: xoshiro256++ under the hood.
    ///
    /// Not bit-compatible with `rand::rngs::StdRng`; see the crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
