//! Vendored, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the slice of the `proptest` API the workspace test-suites use is
//! re-implemented here: the [`proptest!`] test macro, [`Strategy`] with
//! [`Strategy::prop_map`], range and tuple strategies, [`any`],
//! [`prop_oneof!`], the `prop_assert*` family, [`prop_assume!`], and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics differ from the real crate in one important way: failing inputs
//! are **not shrunk**. A failure reports the case number and the per-test
//! deterministic seed instead of a minimized counterexample. Case generation
//! is deterministic per test name, so failures reproduce across runs.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![warn(missing_docs)]

/// Deterministic generator driving test-case generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The seed [`deterministic`](Self::deterministic) derives for a test
    /// name (FNV-1a); reported in failure messages for reproduction.
    pub fn seed_of(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Creates a generator whose stream is determined by the test's name, so
    /// every test sees a stable, reproducible case sequence.
    pub fn deterministic(test_name: &str) -> Self {
        Self::from_seed(Self::seed_of(test_name))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count as a run.
    Reject(String),
    /// An assertion failed; the test as a whole fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds the rejection variant.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Object-safe type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between type-erased strategies; built by [`prop_oneof!`].
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union over `arms`; each arm is equally likely.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let v = (wide % span) as i128;
                (self.start as i128).wrapping_add(v) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let v = (wide % span) as i128;
                (start as i128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128 ranges are used by the `Ratio` property tests; they need their own
// expansion because the generic one funnels through i128 already.
impl Strategy for core::ops::Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start.wrapping_add((wide % span) as i128)
    }
}

impl Strategy for core::ops::RangeInclusive<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut TestRng) -> i128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = end.wrapping_sub(start) as u128 + 1;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        start.wrapping_add((wide % span) as i128)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical "generate anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Everything a property test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking) so the harness can report the case number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), l, format!($($fmt)*)
        );
    }};
}

/// Discards the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }` runs
/// the body over `cases` generated inputs (no shrinking on failure).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::TestRng::seed_of(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::from_seed(seed);
            let mut passed: u32 = 0;
            let mut case: u64 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                case += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(16),
                    "{}: too many rejected cases ({} rejections for {} required cases)",
                    stringify!($name), rejected, config.cases
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "{} failed at case #{case} (seed {seed:#018x}): {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(pair.1 >= pair.0);
        }

        #[test]
        fn assume_discards((a, b) in (0u64..100, 0u64..100)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![0u8..1, 10u8..11, 20u8..21]) {
            prop_assert!(v == 0 || v == 10 || v == 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_honoured(_x in any::<u64>()) {
            prop_assert!(true);
        }
    }

    mod failing {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x}");
            }
        }

        pub fn run() {
            always_fails();
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        failing::run();
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("foo");
        let mut b = crate::TestRng::deterministic("foo");
        let mut c = crate::TestRng::deterministic("bar");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
